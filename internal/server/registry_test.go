package server

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slap/internal/embed"
	"slap/internal/nn"
)

func tinyModel(seed int64) *nn.Model {
	return nn.NewModel(embed.Rows, embed.Cols, 4, 10, rand.New(rand.NewSource(seed)))
}

func TestRegistryDefaults(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Library(""); err != nil {
		t.Errorf("default library lookup: %v", err)
	}
	if _, err := r.Library(DefaultLibrary); err != nil {
		t.Errorf("asap7ish lookup: %v", err)
	}
	libs := r.Libraries()
	if len(libs) != 1 || libs[0].Name != DefaultLibrary || libs[0].Source != "builtin" {
		t.Errorf("Libraries() = %+v, want the builtin asap7ish entry", libs)
	}
	if len(r.Models()) != 0 {
		t.Errorf("fresh registry has %d models, want 0", len(r.Models()))
	}
}

func TestRegistryAddAndLookup(t *testing.T) {
	r := NewRegistry()
	m := tinyModel(1)
	if err := r.AddModel("toy", m, "test"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Model("toy")
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Error("Model(toy) did not return the registered pointer")
	}
	if err := r.AddModel("toy", tinyModel(2), "test"); err == nil {
		t.Error("duplicate AddModel succeeded, want error")
	}
	if _, err := r.Model("nonesuch"); err == nil {
		t.Error("unknown model lookup succeeded, want error")
	} else if !strings.Contains(err.Error(), "toy") {
		t.Errorf("unknown-model error does not list available names: %v", err)
	}
}

func TestRegistryAddModelFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.gob")
	if err := tinyModel(3).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	// Empty name derives from the file name.
	if err := r.AddModelFile("", path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Model("toy"); err != nil {
		t.Errorf("Model(toy) after AddModelFile: %v", err)
	}
	if err := r.AddModelFile("bad", filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("AddModelFile(missing) succeeded, want error")
	} else if !strings.Contains(err.Error(), "missing.gob") {
		t.Errorf("load error does not name the file: %v", err)
	}
}

func TestRegistryAddLibraryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.lib")
	text := "GATE inv 1 O=!a DELAY 5 SLOPE 1\nGATE nand2 1.5 O=!(a&b) DELAY 9 SLOPE 2\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.AddLibraryFile("", path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Library("mini"); err != nil {
		t.Errorf("Library(mini): %v", err)
	}
	infos := r.Libraries()
	if len(infos) != 2 {
		t.Errorf("Libraries() has %d entries, want 2", len(infos))
	}
	if _, err := r.Library("nope"); err == nil {
		t.Error("unknown library lookup succeeded, want error")
	} else if !strings.Contains(err.Error(), DefaultLibrary) {
		t.Errorf("unknown-library error does not list available names: %v", err)
	}
}
