package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

func aagText(t *testing.T, g *aig.AIG) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// scrapeCounter reads one un-labelled counter/gauge value from /metrics.
func scrapeCounter(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindSubmatch(data)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, data)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMapResultCacheRepeat pins the result cache over HTTP: resubmitting
// the same circuit+options answers from the cache with byte-identical
// netlist payloads, for both the vanilla and the ML policy, and the
// mapcache counters surface on /metrics.
func TestMapResultCacheRepeat(t *testing.T) {
	_, ts := newTestServer(t, Config{ResultCacheBytes: -1, ECO: true})

	for _, tc := range []struct {
		name string
		req  map[string]any
	}{
		{"default", map[string]any{"circuit": rc16Text(t), "policy": "default", "netlist": "blif", "verify": true}},
		{"slap", map[string]any{"circuit": rc16Text(t), "policy": "slap", "model": "toy", "netlist": "blif", "verify": true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/map", tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			var cold MapResponse
			if err := json.Unmarshal(data, &cold); err != nil {
				t.Fatal(err)
			}
			if cold.Cached || cold.ECO {
				t.Fatalf("first submission served from cache: %+v", cold)
			}
			if !cold.Verified || cold.Netlist == "" {
				t.Fatalf("first submission missing verify/netlist: %+v", cold)
			}

			resp, data = postJSON(t, ts.URL+"/v1/map", tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			var warm MapResponse
			if err := json.Unmarshal(data, &warm); err != nil {
				t.Fatal(err)
			}
			if !warm.Cached {
				t.Fatalf("resubmission not served from cache: %+v", warm)
			}
			if warm.Netlist != cold.Netlist || warm.Area != cold.Area || warm.Delay != cold.Delay {
				t.Fatal("cached response differs from cold response")
			}
			if !warm.Verified {
				t.Fatal("cached response lost the verify bit")
			}
		})
	}

	if hits := scrapeCounter(t, ts.URL, "slap_mapcache_hits"); hits < 2 {
		t.Fatalf("slap_mapcache_hits = %d, want >= 2", hits)
	}
	if misses := scrapeCounter(t, ts.URL, "slap_mapcache_misses"); misses < 2 {
		t.Fatalf("slap_mapcache_misses = %d, want >= 2", misses)
	}
	if b := scrapeCounter(t, ts.URL, "slap_mapcache_bytes"); b <= 0 {
		t.Fatalf("slap_mapcache_bytes = %d, want > 0", b)
	}
}

// TestMapResultCacheECO pins the server-side ECO: after a baseline mapping
// is cached, submitting a locally edited variant is served by
// delta-remapping — the response says so, the dirty fraction is a proper
// fraction, the netlist is byte-identical to a cold map of the edit, and
// slap_mapcache_eco_hits ticks.
func TestMapResultCacheECO(t *testing.T) {
	_, ts := newTestServer(t, Config{ResultCacheBytes: -1, ECO: true})
	base := circuits.BoothMultiplier(5)
	edited := circuits.PerturbSpan(base, 7, 0.9, 1.0, 0.3)

	resp, data := postJSON(t, ts.URL+"/v1/map", map[string]any{
		"circuit": aagText(t, base), "policy": "default", "verify": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}

	resp, data = postJSON(t, ts.URL+"/v1/map", map[string]any{
		"circuit": aagText(t, edited), "policy": "default", "netlist": "blif", "verify": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got MapResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.ECO || got.Cached {
		t.Fatalf("edited submission not ECO-served: %+v", got)
	}
	if got.DirtyFraction <= 0 || got.DirtyFraction >= 1 {
		t.Fatalf("dirty fraction %v, want in (0, 1)", got.DirtyFraction)
	}
	if !got.Verified {
		t.Fatal("ECO response lost the verify bit")
	}

	// Byte-identity against a cold map of the same round-tripped graph.
	g2, err := aig.Decode(aig.FormatAAG, bytes.NewReader([]byte(aagText(t, edited))))
	if err != nil {
		t.Fatal(err)
	}
	want, err := mapper.Map(g2, mapper.Options{Library: library.ASAP7ish(), Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := want.Netlist.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Netlist != buf.String() {
		t.Fatal("ECO netlist differs from cold map of the edited design")
	}

	if eco := scrapeCounter(t, ts.URL, "slap_mapcache_eco_hits"); eco != 1 {
		t.Fatalf("slap_mapcache_eco_hits = %d, want 1", eco)
	}
	if n := scrapeCounter(t, ts.URL, "slap_eco_dirty_fraction_count"); n != 1 {
		t.Fatalf("slap_eco_dirty_fraction_count = %d, want 1", n)
	}

	// Resubmitting the edit is now an exact hit.
	resp, data = postJSON(t, ts.URL+"/v1/map", map[string]any{
		"circuit": aagText(t, edited), "policy": "default", "netlist": "blif", "verify": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var warm MapResponse
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Netlist != got.Netlist {
		t.Fatalf("edited resubmission not an exact hit: cached=%v", warm.Cached)
	}
}

// TestClassifySingleflight pins the /v1/classify dedup: two concurrent
// identical submissions (rendezvoused via the fault hook so both are in
// flight) share one classification run.
func TestClassifySingleflight(t *testing.T) {
	srv, ts := newTestServer(t, Config{WorkerBudget: 4})
	var arrived atomic.Int32
	gate := make(chan struct{})
	srv.faultHook = func(endpoint string) {
		if endpoint != "/v1/classify" {
			return
		}
		if arrived.Add(1) == 2 {
			close(gate)
		}
		<-gate
	}

	var mu sync.Mutex
	var results []ClassifyResponse
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/classify", map[string]any{
				"circuit": rc16Text(t), "model": "toy", "workers": 1,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var cr ClassifyResponse
			if err := json.Unmarshal(data, &cr); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results = append(results, cr)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	shared := 0
	for _, r := range results {
		if r.Shared {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("shared responses = %d, want exactly 1 (leader + follower)", shared)
	}
	if results[0].Cuts != results[1].Cuts || results[0].Nodes != results[1].Nodes {
		t.Fatalf("shared classifications differ: %+v vs %+v", results[0], results[1])
	}
}
