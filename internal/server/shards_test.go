package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"slap/internal/genjob"
)

// TestShardExecuteRoundTrip checks the worker half of remote dataset
// fan-out: POST /v1/shards/execute answers with a framed shard whose
// bytes pass the coordinator's full verification and whose SHA header
// matches the frame content.
func TestShardExecuteRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t, Config{WorkerName: "w-test"})
	_ = srv

	req := ShardExecRequest{
		Circuits:       []string{"rc16"},
		MapsPerCircuit: 2,
		Seed:           7,
		Shard:          0,
		Circuit:        0,
		Start:          0,
		End:            2,
	}
	resp, data := postJSON(t, ts.URL+"/v1/shards/execute", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("Content-Type = %q, want application/octet-stream", got)
	}
	if got := resp.Header.Get("X-Slap-Worker"); got != "w-test" {
		t.Errorf("X-Slap-Worker = %q, want w-test", got)
	}
	sha := resp.Header.Get(shardSHAHeader)
	if sha == "" {
		t.Fatalf("missing %s header", shardSHAHeader)
	}

	// The frame must verify exactly as a coordinator would verify it:
	// against the fingerprint of the same sweep config.
	dcfg, err := srv.datasetSweepConfig(req.Circuits, req.MapsPerCircuit, req.Classes, req.Seed, req.ShuffleLimit, req.Metric, req.MaxMapFailures)
	if err != nil {
		t.Fatal(err)
	}
	if dcfg, err = dcfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	sp := genjob.Spec{Shard: req.Shard, Circuit: req.Circuit, Start: req.Start, End: req.End}
	gotSHA, err := genjob.VerifyShardBytes(data, "w-test", sp, genjob.Fingerprint(dcfg))
	if err != nil {
		t.Fatalf("returned frame failed verification: %v", err)
	}
	if gotSHA != sha {
		t.Errorf("frame SHA %s disagrees with %s header %s", gotSHA, shardSHAHeader, sha)
	}

	// Determinism: re-executing the same shard yields the identical frame.
	resp2, data2 := postJSON(t, ts.URL+"/v1/shards/execute", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-execution status %d", resp2.StatusCode)
	}
	if string(data) != string(data2) {
		t.Error("re-executing the same shard produced different frame bytes")
	}
}

// TestShardExecuteRejects pins the endpoint's validation: fingerprint skew
// answers 409, malformed specs and sweeps answer 400.
func TestShardExecuteRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ShardExecRequest{
		MapsPerCircuit: 2,
		Shard:          0, Circuit: 0, Start: 0, End: 2,
	}

	t.Run("fingerprint skew", func(t *testing.T) {
		req := base
		req.Fingerprint = "deadbeefdeadbeef"
		resp, data := postJSON(t, ts.URL+"/v1/shards/execute", req)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("status %d (%s), want 409", resp.StatusCode, data)
		}
	})
	t.Run("no maps", func(t *testing.T) {
		req := base
		req.MapsPerCircuit = 0
		resp, _ := postJSON(t, ts.URL+"/v1/shards/execute", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("spec out of range", func(t *testing.T) {
		req := base
		req.Circuit = 99
		resp, _ := postJSON(t, ts.URL+"/v1/shards/execute", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown circuit", func(t *testing.T) {
		req := base
		req.Circuits = []string{"mystery"}
		resp, _ := postJSON(t, ts.URL+"/v1/shards/execute", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestWorkerNameStamping checks the fleet identity rides every data-path
// answer: /v1/map and /v1/classify responses carry the worker field (and
// header), /healthz reports the name, and an unnamed server omits them.
func TestWorkerNameStamping(t *testing.T) {
	_, named := newTestServer(t, Config{WorkerName: "w7"})
	resp, data := postRaw(t, named.URL+"/v1/map", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d: %s", resp.StatusCode, data)
	}
	var mr MapResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Worker != "w7" {
		t.Errorf("map response worker = %q, want w7", mr.Worker)
	}
	if got := resp.Header.Get("X-Slap-Worker"); got != "w7" {
		t.Errorf("X-Slap-Worker = %q, want w7", got)
	}

	var hz struct {
		Worker string `json:"worker"`
	}
	if status := getJSON(t, named.URL+"/healthz", &hz); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if hz.Worker != "w7" {
		t.Errorf("healthz worker = %q, want w7", hz.Worker)
	}

	_, anon := newTestServer(t, Config{})
	resp, data = postRaw(t, anon.URL+"/v1/map", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous map status %d", resp.StatusCode)
	}
	var anonMR MapResponse
	if err := json.Unmarshal(data, &anonMR); err != nil {
		t.Fatal(err)
	}
	if anonMR.Worker != "" {
		t.Errorf("unnamed server stamped worker %q, want empty", anonMR.Worker)
	}
	if got := resp.Header.Get("X-Slap-Worker"); got != "" {
		t.Errorf("unnamed server set X-Slap-Worker %q, want unset", got)
	}
}
