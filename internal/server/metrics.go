package server

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"slap/internal/choice"
	"slap/internal/cuts"
	"slap/internal/infer"
	"slap/internal/mapcache"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen to straddle everything from a /healthz probe to a
// paper-profile AES mapping.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// batchSizeBuckets are the upper bounds of the inference batch-size
// histogram; the top bucket sits above any realistic MaxBatch.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// queueWaitBuckets are the upper bounds (seconds) of the coalescer
// queue-wait histogram, spanning sub-deadline waits to stalled backends.
var queueWaitBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.5,
}

// dirtyFractionBuckets are the upper bounds of the ECO dirty-cone-fraction
// histogram: the share of AND nodes a delta remap had to re-process.
// Small fractions are the payoff region, so the buckets concentrate there.
var dirtyFractionBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.9}

// roundsBuckets are the upper bounds of the selection-rounds histogram:
// 1 is the classic single-pass schedule, everything above is multi-round.
var roundsBuckets = []float64{1, 2, 3, 4, 6, 8}

// roundGainBuckets are the upper bounds of the multi-round relative
// area-improvement histogram (final round vs round-1 delay cover);
// regressions (negative gain) land in the first bucket.
var roundGainBuckets = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5}

// Metrics aggregates service observability: per-endpoint/status request
// counts, a global latency histogram, cut throughput, and the scheduler's
// queue/inflight gauges. It renders both Prometheus text (GET /metrics)
// and an expvar snapshot.
type Metrics struct {
	start time.Time
	sched *Scheduler

	mu           sync.Mutex
	requests     map[string]map[int]int64 // endpoint -> status -> count
	bucketCounts []int64
	latencySum   float64
	latencyCount int64
	cutsTotal    int64
	mapsTotal    int64
	panicsTotal  int64
	// Inference coalescer telemetry (Metrics implements infer.Collector).
	batchBuckets   []int64
	batchSum       int64
	batchCount     int64
	waitBuckets    []int64
	waitSum        float64
	flushesByCause map[infer.FlushReason]int64
	// peakCutsMax is the largest simultaneously-live cut count any single
	// mapping reported — the streaming pipeline's working-set high-water
	// mark (two-phase mappings report their total, so the gauge also shows
	// how much the fused flow saves).
	peakCutsMax int64
	// ECO delta-remap telemetry: dirty-cone-fraction histogram.
	dirtyBuckets []int64
	dirtySum     float64
	dirtyCount   int64
	// Multi-round mapping telemetry: selection rounds per mapping and the
	// relative area improvement recovery bought over the round-1 cover.
	roundBuckets []int64
	roundSum     int64
	roundCount   int64
	gainBuckets  []int64
	gainSum      float64
	gainCount    int64
	// Choice-view construction telemetry: per-phase build wall time and
	// proof outcome counters, aggregated across fresh builds only (cached
	// checkouts re-observe nothing).
	choiceBuilds      int64
	choiceGraftSec    float64
	choiceSimulateSec float64
	choiceProveSec    float64
	choiceProved      int64
	choiceRefuted     int64
	choiceBudgetedOut int64
	// degraded reports current degradation reasons (nil = never degraded);
	// set once at server assembly, read at scrape time.
	degraded func() []string
	// arenaStats reports the cut-arena pool counters (nil = no pool).
	arenaStats func() cuts.PoolStats
	// mapCacheStats reports the mapping result cache counters (nil = no
	// cache configured).
	mapCacheStats func() mapcache.Stats
	// choiceCacheStats reports the choice view cache counters (nil = no
	// view cache configured).
	choiceCacheStats func() choice.CacheStats
	// batchWait reports the current coalescer flush deadline in seconds
	// (nil = no batching).
	batchWait func() float64
}

// NewMetrics returns a Metrics bound to the scheduler's gauges.
func NewMetrics(sched *Scheduler) *Metrics {
	return &Metrics{
		start:          time.Now(),
		sched:          sched,
		requests:       make(map[string]map[int]int64),
		bucketCounts:   make([]int64, len(latencyBuckets)+1),
		batchBuckets:   make([]int64, len(batchSizeBuckets)+1),
		waitBuckets:    make([]int64, len(queueWaitBuckets)+1),
		dirtyBuckets:   make([]int64, len(dirtyFractionBuckets)+1),
		roundBuckets:   make([]int64, len(roundsBuckets)+1),
		gainBuckets:    make([]int64, len(roundGainBuckets)+1),
		flushesByCause: make(map[infer.FlushReason]int64),
	}
}

// ObserveFlush implements infer.Collector: every coalescer flush lands in
// the batch-size and queue-wait histograms plus the per-reason counter.
func (m *Metrics) ObserveFlush(fs infer.FlushStats) {
	sec := fs.QueueWait.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchBuckets[sort.SearchFloat64s(batchSizeBuckets, float64(fs.Size))]++
	m.batchSum += int64(fs.Size)
	m.batchCount++
	m.waitBuckets[sort.SearchFloat64s(queueWaitBuckets, sec)]++
	m.waitSum += sec
	m.flushesByCause[fs.Reason]++
}

// Observe records one completed request.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[int]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	i := sort.SearchFloat64s(latencyBuckets, sec)
	m.bucketCounts[i]++
	m.latencySum += sec
	m.latencyCount++
}

// AddCuts accumulates cuts exposed to matching by one mapping request —
// the numerator of the cuts/sec throughput gauge.
func (m *Metrics) AddCuts(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cutsTotal += int64(n)
	m.mapsTotal++
}

// AddPanic counts one recovered handler or worker panic.
func (m *Metrics) AddPanic() {
	m.mu.Lock()
	m.panicsTotal++
	m.mu.Unlock()
}

// Panics returns the recovered-panic count.
func (m *Metrics) Panics() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.panicsTotal
}

// SetDegradedFunc installs the callback that reports current degradation
// reasons (empty = healthy). Call before serving; it is read at scrape
// time without further synchronisation.
func (m *Metrics) SetDegradedFunc(f func() []string) { m.degraded = f }

// SetArenaStatsFunc installs the callback that reports the cut-arena pool
// counters. Call before serving.
func (m *Metrics) SetArenaStatsFunc(f func() cuts.PoolStats) { m.arenaStats = f }

// SetBatchWaitFunc installs the callback that reports the current
// (possibly adaptive) coalescer flush deadline in seconds. Call before
// serving.
func (m *Metrics) SetBatchWaitFunc(f func() float64) { m.batchWait = f }

// SetMapCacheStatsFunc installs the callback that reports the mapping
// result cache counters. Call before serving.
func (m *Metrics) SetMapCacheStatsFunc(f func() mapcache.Stats) { m.mapCacheStats = f }

// SetChoiceCacheStatsFunc installs the callback that reports the choice
// view cache counters. Call before serving.
func (m *Metrics) SetChoiceCacheStatsFunc(f func() choice.CacheStats) { m.choiceCacheStats = f }

// ObserveChoiceBuild records one fresh choice-view build: per-phase wall
// time plus the prover's outcome tallies.
func (m *Metrics) ObserveChoiceBuild(v *choice.View) {
	ph := v.Phases()
	m.mu.Lock()
	m.choiceBuilds++
	m.choiceGraftSec += ph.Graft.Seconds()
	m.choiceSimulateSec += ph.Simulate.Seconds()
	m.choiceProveSec += ph.Prove.Seconds()
	m.choiceProved += int64(v.ProvedMembers())
	m.choiceRefuted += int64(v.DroppedDiffer())
	m.choiceBudgetedOut += int64(v.DroppedBudget())
	m.mu.Unlock()
}

// ObserveDirtyFraction records one ECO delta remap's dirty-cone fraction.
func (m *Metrics) ObserveDirtyFraction(f float64) {
	m.mu.Lock()
	m.dirtyBuckets[sort.SearchFloat64s(dirtyFractionBuckets, f)]++
	m.dirtySum += f
	m.dirtyCount++
	m.mu.Unlock()
}

// ObserveRounds records how many selection rounds one mapping executed
// (1 for the classic single-pass schedule).
func (m *Metrics) ObserveRounds(rounds int) {
	m.mu.Lock()
	m.roundBuckets[sort.SearchFloat64s(roundsBuckets, float64(rounds))]++
	m.roundSum += int64(rounds)
	m.roundCount++
	m.mu.Unlock()
}

// ObserveRoundAreaGain records the relative area (asic) or LUT-count (lut)
// improvement of a multi-round mapping's final round over its round-1
// delay/depth cover.
func (m *Metrics) ObserveRoundAreaGain(g float64) {
	m.mu.Lock()
	m.gainBuckets[sort.SearchFloat64s(roundGainBuckets, g)]++
	m.gainSum += g
	m.gainCount++
	m.mu.Unlock()
}

// ObservePeakCuts records one mapping's peak live-cut count, keeping the
// high-water mark across all mappings.
func (m *Metrics) ObservePeakCuts(n int) {
	m.mu.Lock()
	if int64(n) > m.peakCutsMax {
		m.peakCutsMax = int64(n)
	}
	m.mu.Unlock()
}

// CutsPerSec returns mean cut throughput since the server started.
func (m *Metrics) CutsPerSec() float64 {
	up := time.Since(m.start).Seconds()
	if up <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(m.cutsTotal) / up
}

// WritePrometheus renders the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	type row struct {
		endpoint string
		status   int
		count    int64
	}
	var rows []row
	for ep, byStatus := range m.requests {
		for st, c := range byStatus {
			rows = append(rows, row{ep, st, c})
		}
	}
	buckets := append([]int64(nil), m.bucketCounts...)
	latencySum, latencyCount := m.latencySum, m.latencyCount
	cutsTotal, mapsTotal := m.cutsTotal, m.mapsTotal
	panicsTotal := m.panicsTotal
	batchBuckets := append([]int64(nil), m.batchBuckets...)
	batchSum, batchCount := m.batchSum, m.batchCount
	waitBuckets := append([]int64(nil), m.waitBuckets...)
	waitSum := m.waitSum
	flushes := make(map[infer.FlushReason]int64, len(m.flushesByCause))
	for r, c := range m.flushesByCause {
		flushes[r] = c
	}
	peakCutsMax := m.peakCutsMax
	dirtyBuckets := append([]int64(nil), m.dirtyBuckets...)
	dirtySum, dirtyCount := m.dirtySum, m.dirtyCount
	roundBuckets := append([]int64(nil), m.roundBuckets...)
	roundSum, roundCount := m.roundSum, m.roundCount
	gainBuckets := append([]int64(nil), m.gainBuckets...)
	gainSum, gainCount := m.gainSum, m.gainCount
	choiceBuilds := m.choiceBuilds
	choiceGraft, choiceSim, choiceProve := m.choiceGraftSec, m.choiceSimulateSec, m.choiceProveSec
	choiceProved, choiceRefuted, choiceBudgeted := m.choiceProved, m.choiceRefuted, m.choiceBudgetedOut
	m.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].endpoint != rows[j].endpoint {
			return rows[i].endpoint < rows[j].endpoint
		}
		return rows[i].status < rows[j].status
	})

	fmt.Fprintln(w, "# HELP slap_requests_total Completed HTTP requests by endpoint and status.")
	fmt.Fprintln(w, "# TYPE slap_requests_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "slap_requests_total{endpoint=%q,code=\"%d\"} %d\n", r.endpoint, r.status, r.count)
	}

	fmt.Fprintln(w, "# HELP slap_request_seconds Request latency histogram.")
	fmt.Fprintln(w, "# TYPE slap_request_seconds histogram")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "slap_request_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "slap_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "slap_request_seconds_sum %g\n", latencySum)
	fmt.Fprintf(w, "slap_request_seconds_count %d\n", latencyCount)

	fmt.Fprintln(w, "# HELP slap_queue_depth Requests waiting for worker tokens.")
	fmt.Fprintln(w, "# TYPE slap_queue_depth gauge")
	fmt.Fprintf(w, "slap_queue_depth %d\n", m.sched.QueueDepth())

	fmt.Fprintln(w, "# HELP slap_inflight_workers Worker tokens currently borrowed.")
	fmt.Fprintln(w, "# TYPE slap_inflight_workers gauge")
	fmt.Fprintf(w, "slap_inflight_workers %d\n", m.sched.InFlight())

	fmt.Fprintln(w, "# HELP slap_worker_budget Global worker-token budget.")
	fmt.Fprintln(w, "# TYPE slap_worker_budget gauge")
	fmt.Fprintf(w, "slap_worker_budget %d\n", m.sched.Budget())

	fmt.Fprintln(w, "# HELP slap_cuts_considered_total Cuts exposed to Boolean matching across all mappings.")
	fmt.Fprintln(w, "# TYPE slap_cuts_considered_total counter")
	fmt.Fprintf(w, "slap_cuts_considered_total %d\n", cutsTotal)

	fmt.Fprintln(w, "# HELP slap_mappings_total Completed mapping runs.")
	fmt.Fprintln(w, "# TYPE slap_mappings_total counter")
	fmt.Fprintf(w, "slap_mappings_total %d\n", mapsTotal)

	fmt.Fprintln(w, "# HELP slap_cuts_per_second Mean cut throughput since start.")
	fmt.Fprintln(w, "# TYPE slap_cuts_per_second gauge")
	fmt.Fprintf(w, "slap_cuts_per_second %g\n", m.CutsPerSec())

	fmt.Fprintln(w, "# HELP slap_infer_batch_size Samples per coalesced inference flush.")
	fmt.Fprintln(w, "# TYPE slap_infer_batch_size histogram")
	var bcum int64
	for i, ub := range batchSizeBuckets {
		bcum += batchBuckets[i]
		fmt.Fprintf(w, "slap_infer_batch_size_bucket{le=\"%g\"} %d\n", ub, bcum)
	}
	bcum += batchBuckets[len(batchSizeBuckets)]
	fmt.Fprintf(w, "slap_infer_batch_size_bucket{le=\"+Inf\"} %d\n", bcum)
	fmt.Fprintf(w, "slap_infer_batch_size_sum %d\n", batchSum)
	fmt.Fprintf(w, "slap_infer_batch_size_count %d\n", batchCount)

	fmt.Fprintln(w, "# HELP slap_infer_queue_wait_seconds Wait of the oldest sample in each flushed batch.")
	fmt.Fprintln(w, "# TYPE slap_infer_queue_wait_seconds histogram")
	var wcum int64
	for i, ub := range queueWaitBuckets {
		wcum += waitBuckets[i]
		fmt.Fprintf(w, "slap_infer_queue_wait_seconds_bucket{le=\"%g\"} %d\n", ub, wcum)
	}
	wcum += waitBuckets[len(queueWaitBuckets)]
	fmt.Fprintf(w, "slap_infer_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", wcum)
	fmt.Fprintf(w, "slap_infer_queue_wait_seconds_sum %g\n", waitSum)
	fmt.Fprintf(w, "slap_infer_queue_wait_seconds_count %d\n", batchCount)

	fmt.Fprintln(w, "# HELP slap_infer_flushes_total Coalescer flushes by trigger.")
	fmt.Fprintln(w, "# TYPE slap_infer_flushes_total counter")
	for _, reason := range []infer.FlushReason{infer.FlushSize, infer.FlushDeadline, infer.FlushDrain} {
		fmt.Fprintf(w, "slap_infer_flushes_total{reason=%q} %d\n", string(reason), flushes[reason])
		delete(flushes, reason)
	}
	for reason, c := range flushes {
		fmt.Fprintf(w, "slap_infer_flushes_total{reason=%q} %d\n", string(reason), c)
	}

	fmt.Fprintln(w, "# HELP slap_infer_adaptive_wait_seconds Current coalescer flush deadline (EWMA-derived when adaptive).")
	fmt.Fprintln(w, "# TYPE slap_infer_adaptive_wait_seconds gauge")
	batchWait := 0.0
	if m.batchWait != nil {
		batchWait = m.batchWait()
	}
	fmt.Fprintf(w, "slap_infer_adaptive_wait_seconds %g\n", batchWait)

	var arena cuts.PoolStats
	if m.arenaStats != nil {
		arena = m.arenaStats()
	}
	fmt.Fprintln(w, "# HELP slap_arena_hits_total Mapping requests served by a cached cut arena.")
	fmt.Fprintln(w, "# TYPE slap_arena_hits_total counter")
	fmt.Fprintf(w, "slap_arena_hits_total %d\n", arena.Hits)

	fmt.Fprintln(w, "# HELP slap_arena_misses_total Mapping requests that built a fresh cut arena.")
	fmt.Fprintln(w, "# TYPE slap_arena_misses_total counter")
	fmt.Fprintf(w, "slap_arena_misses_total %d\n", arena.Misses)

	fmt.Fprintln(w, "# HELP slap_arena_cached Cut arenas currently parked in the cross-request pool.")
	fmt.Fprintln(w, "# TYPE slap_arena_cached gauge")
	fmt.Fprintf(w, "slap_arena_cached %d\n", arena.Cached)

	fmt.Fprintln(w, "# HELP slap_arena_evictions_total Cut arenas dropped from the pool to admit hotter graphs.")
	fmt.Fprintln(w, "# TYPE slap_arena_evictions_total counter")
	fmt.Fprintf(w, "slap_arena_evictions_total %d\n", arena.Evictions)

	var mc mapcache.Stats
	if m.mapCacheStats != nil {
		mc = m.mapCacheStats()
	}
	fmt.Fprintln(w, "# HELP slap_mapcache_hits Mapping requests answered from the result cache (exact repeats and singleflight followers).")
	fmt.Fprintln(w, "# TYPE slap_mapcache_hits counter")
	fmt.Fprintf(w, "slap_mapcache_hits %d\n", mc.Hits)

	fmt.Fprintln(w, "# HELP slap_mapcache_misses Mapping requests whose content address was not cached.")
	fmt.Fprintln(w, "# TYPE slap_mapcache_misses counter")
	fmt.Fprintf(w, "slap_mapcache_misses %d\n", mc.Misses)

	fmt.Fprintln(w, "# HELP slap_mapcache_eco_hits Cache misses served by delta-remapping against a cached relative.")
	fmt.Fprintln(w, "# TYPE slap_mapcache_eco_hits counter")
	fmt.Fprintf(w, "slap_mapcache_eco_hits %d\n", mc.ECOHits)

	fmt.Fprintln(w, "# HELP slap_mapcache_evictions Result-cache entries dropped to stay inside the byte budget.")
	fmt.Fprintln(w, "# TYPE slap_mapcache_evictions counter")
	fmt.Fprintf(w, "slap_mapcache_evictions %d\n", mc.Evictions)

	fmt.Fprintln(w, "# HELP slap_mapcache_bytes Estimated resident size of the result cache.")
	fmt.Fprintln(w, "# TYPE slap_mapcache_bytes gauge")
	fmt.Fprintf(w, "slap_mapcache_bytes %d\n", mc.Bytes)

	fmt.Fprintln(w, "# HELP slap_mapcache_entries Result-cache entries currently resident.")
	fmt.Fprintln(w, "# TYPE slap_mapcache_entries gauge")
	fmt.Fprintf(w, "slap_mapcache_entries %d\n", mc.Entries)

	fmt.Fprintln(w, "# HELP slap_eco_dirty_fraction Fraction of AND nodes re-processed per ECO delta remap.")
	fmt.Fprintln(w, "# TYPE slap_eco_dirty_fraction histogram")
	var dcum int64
	for i, ub := range dirtyFractionBuckets {
		dcum += dirtyBuckets[i]
		fmt.Fprintf(w, "slap_eco_dirty_fraction_bucket{le=\"%g\"} %d\n", ub, dcum)
	}
	dcum += dirtyBuckets[len(dirtyFractionBuckets)]
	fmt.Fprintf(w, "slap_eco_dirty_fraction_bucket{le=\"+Inf\"} %d\n", dcum)
	fmt.Fprintf(w, "slap_eco_dirty_fraction_sum %g\n", dirtySum)
	fmt.Fprintf(w, "slap_eco_dirty_fraction_count %d\n", dirtyCount)

	fmt.Fprintln(w, "# HELP slap_map_rounds Selection rounds executed per mapping (1 = classic single pass).")
	fmt.Fprintln(w, "# TYPE slap_map_rounds histogram")
	var rcum int64
	for i, ub := range roundsBuckets {
		rcum += roundBuckets[i]
		fmt.Fprintf(w, "slap_map_rounds_bucket{le=\"%g\"} %d\n", ub, rcum)
	}
	rcum += roundBuckets[len(roundsBuckets)]
	fmt.Fprintf(w, "slap_map_rounds_bucket{le=\"+Inf\"} %d\n", rcum)
	fmt.Fprintf(w, "slap_map_rounds_sum %d\n", roundSum)
	fmt.Fprintf(w, "slap_map_rounds_count %d\n", roundCount)

	fmt.Fprintln(w, "# HELP slap_map_round_area_gain Relative area improvement of the final recovery round over the round-1 cover.")
	fmt.Fprintln(w, "# TYPE slap_map_round_area_gain histogram")
	var gcum int64
	for i, ub := range roundGainBuckets {
		gcum += gainBuckets[i]
		fmt.Fprintf(w, "slap_map_round_area_gain_bucket{le=\"%g\"} %d\n", ub, gcum)
	}
	gcum += gainBuckets[len(roundGainBuckets)]
	fmt.Fprintf(w, "slap_map_round_area_gain_bucket{le=\"+Inf\"} %d\n", gcum)
	fmt.Fprintf(w, "slap_map_round_area_gain_sum %g\n", gainSum)
	fmt.Fprintf(w, "slap_map_round_area_gain_count %d\n", gainCount)

	fmt.Fprintln(w, "# HELP slap_choice_builds_total Fresh choice-view builds (cached checkouts excluded).")
	fmt.Fprintln(w, "# TYPE slap_choice_builds_total counter")
	fmt.Fprintf(w, "slap_choice_builds_total %d\n", choiceBuilds)

	fmt.Fprintln(w, "# HELP slap_choice_build_seconds Wall time spent in each choice-view build phase, summed across fresh builds.")
	fmt.Fprintln(w, "# TYPE slap_choice_build_seconds counter")
	fmt.Fprintf(w, "slap_choice_build_seconds{phase=\"graft\"} %g\n", choiceGraft)
	fmt.Fprintf(w, "slap_choice_build_seconds{phase=\"simulate\"} %g\n", choiceSim)
	fmt.Fprintf(w, "slap_choice_build_seconds{phase=\"prove\"} %g\n", choiceProve)

	fmt.Fprintln(w, "# HELP slap_choice_proofs_total Choice-prover certificate outcomes across fresh builds.")
	fmt.Fprintln(w, "# TYPE slap_choice_proofs_total counter")
	fmt.Fprintf(w, "slap_choice_proofs_total{outcome=\"proved\"} %d\n", choiceProved)
	fmt.Fprintf(w, "slap_choice_proofs_total{outcome=\"refuted\"} %d\n", choiceRefuted)
	fmt.Fprintf(w, "slap_choice_proofs_total{outcome=\"budget_exhausted\"} %d\n", choiceBudgeted)

	var cc choice.CacheStats
	if m.choiceCacheStats != nil {
		cc = m.choiceCacheStats()
	}
	fmt.Fprintln(w, "# HELP slap_choice_viewcache_hits Choice-view checkouts served from the cache (exact repeats and singleflight followers).")
	fmt.Fprintln(w, "# TYPE slap_choice_viewcache_hits counter")
	fmt.Fprintf(w, "slap_choice_viewcache_hits %d\n", cc.Hits)

	fmt.Fprintln(w, "# HELP slap_choice_viewcache_misses Choice-view checkouts that built a fresh view.")
	fmt.Fprintln(w, "# TYPE slap_choice_viewcache_misses counter")
	fmt.Fprintf(w, "slap_choice_viewcache_misses %d\n", cc.Misses)

	fmt.Fprintln(w, "# HELP slap_choice_viewcache_bytes Estimated resident size of cached choice views.")
	fmt.Fprintln(w, "# TYPE slap_choice_viewcache_bytes gauge")
	fmt.Fprintf(w, "slap_choice_viewcache_bytes %d\n", cc.Bytes)

	fmt.Fprintln(w, "# HELP slap_choice_viewcache_evictions Cached choice views dropped to stay inside the byte budget.")
	fmt.Fprintln(w, "# TYPE slap_choice_viewcache_evictions counter")
	fmt.Fprintf(w, "slap_choice_viewcache_evictions %d\n", cc.Evictions)

	fmt.Fprintln(w, "# HELP slap_choice_viewcache_views Choice views currently resident in the cache.")
	fmt.Fprintln(w, "# TYPE slap_choice_viewcache_views gauge")
	fmt.Fprintf(w, "slap_choice_viewcache_views %d\n", cc.Views)

	fmt.Fprintln(w, "# HELP slap_peak_live_cuts Largest simultaneously-live cut count any mapping reported.")
	fmt.Fprintln(w, "# TYPE slap_peak_live_cuts gauge")
	fmt.Fprintf(w, "slap_peak_live_cuts %d\n", peakCutsMax)

	fmt.Fprintln(w, "# HELP slap_panics_total Handler and worker panics recovered by the service.")
	fmt.Fprintln(w, "# TYPE slap_panics_total counter")
	fmt.Fprintf(w, "slap_panics_total %d\n", panicsTotal)

	degradedReasons := 0
	if m.degraded != nil {
		degradedReasons = len(m.degraded())
	}
	fmt.Fprintln(w, "# HELP slap_degraded Number of active degradation reasons (0 = healthy).")
	fmt.Fprintln(w, "# TYPE slap_degraded gauge")
	fmt.Fprintf(w, "slap_degraded %d\n", degradedReasons)

	fmt.Fprintln(w, "# HELP slap_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE slap_uptime_seconds gauge")
	fmt.Fprintf(w, "slap_uptime_seconds %g\n", time.Since(m.start).Seconds())
}

// snapshot builds the expvar map: counters plus live gauges.
func (m *Metrics) snapshot() any {
	m.mu.Lock()
	total := int64(0)
	byEndpoint := make(map[string]int64, len(m.requests))
	for ep, byStatus := range m.requests {
		for _, c := range byStatus {
			byEndpoint[ep] += c
			total += c
		}
	}
	cutsTotal := m.cutsTotal
	mapsTotal := m.mapsTotal
	panicsTotal := m.panicsTotal
	batchCount, batchSum := m.batchCount, m.batchSum
	peakCutsMax := m.peakCutsMax
	m.mu.Unlock()
	var arena cuts.PoolStats
	if m.arenaStats != nil {
		arena = m.arenaStats()
	}
	var mc mapcache.Stats
	if m.mapCacheStats != nil {
		mc = m.mapCacheStats()
	}
	var cc choice.CacheStats
	if m.choiceCacheStats != nil {
		cc = m.choiceCacheStats()
	}
	return map[string]any{
		"choice_viewcache_hits":   cc.Hits,
		"choice_viewcache_misses": cc.Misses,
		"choice_viewcache_bytes":  cc.Bytes,
		"choice_viewcache_views":  cc.Views,
		"arena_hits":              arena.Hits,
		"arena_misses":            arena.Misses,
		"arena_cached":            arena.Cached,
		"arena_evictions":         arena.Evictions,
		"mapcache_hits":           mc.Hits,
		"mapcache_misses":         mc.Misses,
		"mapcache_eco_hits":       mc.ECOHits,
		"mapcache_evictions":      mc.Evictions,
		"mapcache_bytes":          mc.Bytes,
		"mapcache_entries":        mc.Entries,
		"peak_live_cuts":          peakCutsMax,
		"requests_total":          total,
		"requests_by_endpoint":    byEndpoint,
		"cuts_considered":         cutsTotal,
		"mappings_total":          mapsTotal,
		"panics_total":            panicsTotal,
		"infer_flushes":           batchCount,
		"infer_batched":           batchSum,
		"cuts_per_second":         m.CutsPerSec(),
		"queue_depth":             m.sched.QueueDepth(),
		"inflight_workers":        m.sched.InFlight(),
		"worker_budget":           m.sched.Budget(),
		"uptime_seconds":          time.Since(m.start).Seconds(),
	}
}

var publishOnce sync.Once

// PublishExpvar exposes this Metrics as the process-wide "slap" expvar.
// expvar names are global to the process, so only the first server to call
// this wins; tests that build many servers simply skip it.
func (m *Metrics) PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("slap", expvar.Func(m.snapshot))
	})
}
