package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerClampsToBudget(t *testing.T) {
	s := NewScheduler(4, 8)
	// A request for more than the budget (or <= 0) gets the whole budget.
	for _, want := range []int{0, -1, 99} {
		got, release, err := s.Acquire(context.Background(), want)
		if err != nil {
			t.Fatalf("Acquire(%d): %v", want, err)
		}
		if got != 4 {
			t.Errorf("Acquire(%d) granted %d, want 4", want, got)
		}
		release()
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight after releases = %d, want 0", s.InFlight())
	}
}

func TestSchedulerNeverOversubscribes(t *testing.T) {
	const budget = 3
	s := NewScheduler(budget, 100)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := 1 + i%budget
			got, release, err := s.Acquire(context.Background(), want)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			cur := inUse.Add(int64(got))
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-int64(got))
			release()
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > budget {
		t.Errorf("peak borrowed tokens %d exceeds budget %d", p, budget)
	}
	if s.InFlight() != 0 || s.QueueDepth() != 0 {
		t.Errorf("scheduler not drained: inflight=%d queued=%d", s.InFlight(), s.QueueDepth())
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(1, 1)
	_, release, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	done := make(chan error, 1)
	go func() {
		_, rel, err := s.Acquire(context.Background(), 1)
		if err == nil {
			rel()
		}
		done <- err
	}()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	// ...the next overflows it.
	if _, _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow Acquire err = %v, want ErrQueueFull", err)
	}
	release()
	if err := <-done; err != nil {
		t.Errorf("queued Acquire failed: %v", err)
	}
}

func TestSchedulerContextWhileQueued(t *testing.T) {
	s := NewScheduler(1, 10)
	_, release, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := s.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued Acquire err = %v, want DeadlineExceeded", err)
	}
	if s.QueueDepth() != 0 {
		t.Errorf("cancelled waiter still queued (depth %d)", s.QueueDepth())
	}
	release()
	// An already-expired context fails without touching the queue.
	if _, _, err := s.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired-ctx Acquire err = %v, want DeadlineExceeded", err)
	}
}

func TestSchedulerClose(t *testing.T) {
	s := NewScheduler(1, 10)
	_, release, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, _, err := s.Acquire(context.Background(), 1)
		queued <- err
	}()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	s.Close()
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Errorf("queued Acquire after Close err = %v, want ErrClosed", err)
	}
	if _, _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Acquire after Close err = %v, want ErrClosed", err)
	}
	// In-flight work still releases cleanly during drain.
	release()
	if s.InFlight() != 0 {
		t.Errorf("InFlight after drain = %d, want 0", s.InFlight())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
