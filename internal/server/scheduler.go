package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Scheduler errors, mapped to HTTP statuses by the front end.
var (
	// ErrQueueFull is returned when the bounded wait queue is at capacity
	// (HTTP 503: shed load rather than buffer unboundedly).
	ErrQueueFull = errors.New("server: scheduler queue full")
	// ErrClosed is returned for acquires after Close (HTTP 503: draining).
	ErrClosed = errors.New("server: scheduler closed")
)

// Scheduler enforces the global worker budget of the mapping service: each
// request borrows worker tokens before it may touch a core, so N concurrent
// mappings cannot oversubscribe GOMAXPROCS no matter what per-request
// Workers values clients ask for. Waiters queue FIFO (no starvation: the
// head waiter always gets the next released tokens) and the queue itself is
// bounded so overload degrades into fast 503s instead of latency collapse.
type Scheduler struct {
	mu       sync.Mutex
	budget   int
	inUse    int
	queueCap int
	waiters  []*waiter
	closed   bool
}

type waiter struct {
	want    int
	granted int
	ready   chan struct{} // closed once granted (or failed via err)
	err     error
}

// DefaultQueueCap bounds the wait queue when NewScheduler is given no cap.
const DefaultQueueCap = 64

// NewScheduler returns a scheduler with the given worker budget and queue
// capacity. budget <= 0 means GOMAXPROCS; queueCap <= 0 means
// DefaultQueueCap.
func NewScheduler(budget, queueCap int) *Scheduler {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Scheduler{budget: budget, queueCap: queueCap}
}

// Budget returns the total worker-token budget.
func (s *Scheduler) Budget() int { return s.budget }

// InFlight returns the number of worker tokens currently borrowed.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// QueueDepth returns the number of requests waiting for tokens.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Acquire borrows want worker tokens, blocking in FIFO order until they are
// available, the queue is full, ctx is done, or the scheduler closes. A
// want of <= 0 asks for the whole budget (the "all cores" convention of the
// Workers knobs); any request is clamped to [1, budget]. On success it
// returns the granted token count and a release function that must be
// called exactly once, after the mapping work completes — releasing only
// then is what keeps the budget honest even when a request's HTTP handler
// has already timed out and returned.
func (s *Scheduler) Acquire(ctx context.Context, want int) (int, func(), error) {
	if want <= 0 || want > s.budget {
		want = s.budget
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, ErrClosed
	}
	// Fast path: tokens free and nobody queued ahead of us.
	if len(s.waiters) == 0 && s.inUse+want <= s.budget {
		s.inUse += want
		s.mu.Unlock()
		return want, s.releaseFunc(want), nil
	}
	if len(s.waiters) >= s.queueCap {
		s.mu.Unlock()
		return 0, nil, ErrQueueFull
	}
	w := &waiter{want: want, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return 0, nil, w.err
		}
		return w.granted, s.releaseFunc(w.granted), nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the tokens back.
			s.mu.Unlock()
			if w.err == nil {
				s.releaseFunc(w.granted)()
			}
			return 0, nil, ctx.Err()
		default:
			s.removeLocked(w)
			s.mu.Unlock()
			return 0, nil, ctx.Err()
		}
	}
}

// releaseFunc returns the once-only release closure for granted tokens.
func (s *Scheduler) releaseFunc(granted int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inUse -= granted
			s.notifyLocked()
			s.mu.Unlock()
		})
	}
}

// notifyLocked grants tokens to queued waiters in FIFO order while they fit.
func (s *Scheduler) notifyLocked() {
	for len(s.waiters) > 0 {
		head := s.waiters[0]
		if s.inUse+head.want > s.budget {
			return
		}
		s.inUse += head.want
		head.granted = head.want
		close(head.ready)
		s.waiters = s.waiters[1:]
	}
}

func (s *Scheduler) removeLocked(w *waiter) {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Close fails all queued waiters with ErrClosed and rejects future
// acquires. Tokens already granted stay borrowed until their release runs —
// graceful drain lets in-flight mappings finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, w := range s.waiters {
		w.err = ErrClosed
		close(w.ready)
	}
	s.waiters = nil
}
