package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// TrainConfig configures Adam training.
type TrainConfig struct {
	// Epochs is the number of passes over the training set (paper: 50).
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// LearningRate is Adam's step size.
	LearningRate float64
	// Beta1, Beta2 and Eps are the Adam moment parameters; zero values take
	// the standard defaults (0.9, 0.999, 1e-8).
	Beta1, Beta2, Eps float64
	// Seed drives minibatch shuffling.
	Seed int64
	// Workers is the number of parallel gradient workers (0 = GOMAXPROCS).
	Workers int
	// Verbose emits one progress line per epoch through Logf.
	Verbose bool
	// Logf receives progress lines when Verbose (default: fmt.Printf).
	Logf func(format string, args ...any)
}

func (c *TrainConfig) fill() {
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1e-3
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Eps == 0 {
		c.Eps = 1e-8
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) { fmt.Printf(format, args...) }
	}
}

// adamState holds first/second moment estimates for every parameter.
type adamState struct {
	m, v *grads
	t    int
}

// EpochStats records per-epoch training progress.
type EpochStats struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Train fits the model on (xs, ys) with Adam and returns per-epoch stats.
// Inputs are used as-is; call FitNormalization first.
func (m *Model) Train(xs [][]float64, ys []int, cfg TrainConfig) ([]EpochStats, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, fmt.Errorf("nn: need equal, non-empty inputs and labels (got %d/%d)", len(xs), len(ys))
	}
	for _, x := range xs {
		if err := m.checkInput(x); err != nil {
			return nil, err
		}
	}
	for _, y := range ys {
		if y < 0 || y >= m.Classes {
			return nil, fmt.Errorf("nn: label %d out of range [0,%d)", y, m.Classes)
		}
	}
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &adamState{m: m.newGrads(), v: m.newGrads()}

	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}

	var stats []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var correct int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			loss, good, g := m.batchGradient(xs, ys, batch, cfg.Workers)
			epochLoss += loss
			correct += good
			m.adamStep(opt, g, cfg)
		}
		s := EpochStats{
			Epoch:    epoch,
			Loss:     epochLoss / float64(len(order)),
			Accuracy: float64(correct) / float64(len(order)),
		}
		stats = append(stats, s)
		if cfg.Verbose {
			cfg.Logf("epoch %3d: loss=%.4f acc=%.4f\n", s.Epoch, s.Loss, s.Accuracy)
		}
	}
	return stats, nil
}

// batchGradient computes the mean gradient over a minibatch in parallel.
func (m *Model) batchGradient(xs [][]float64, ys []int, batch []int, workers int) (float64, int, *grads) {
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers < 1 {
		workers = 1
	}
	type partial struct {
		g       *grads
		loss    float64
		correct int
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			p.g = m.newGrads()
			a := m.newActs()
			for bi := w; bi < len(batch); bi += workers {
				idx := batch[bi]
				m.forward(xs[idx], a)
				prob := a.probs[ys[idx]]
				if prob < 1e-15 {
					prob = 1e-15
				}
				p.loss += -math.Log(prob)
				best, bc := math.Inf(-1), 0
				for c, pv := range a.probs {
					if pv > best {
						best, bc = pv, c
					}
				}
				if bc == ys[idx] {
					p.correct++
				}
				m.backward(a, ys[idx], p.g)
			}
		}(w)
	}
	wg.Wait()
	total := parts[0].g
	loss := parts[0].loss
	correct := parts[0].correct
	for w := 1; w < workers; w++ {
		total.add(parts[w].g)
		loss += parts[w].loss
		correct += parts[w].correct
	}
	total.scale(1 / float64(len(batch)))
	return loss, correct, total
}

// adamStep applies one Adam update.
func (m *Model) adamStep(opt *adamState, g *grads, cfg TrainConfig) {
	opt.t++
	bc1 := 1 - math.Pow(cfg.Beta1, float64(opt.t))
	bc2 := 1 - math.Pow(cfg.Beta2, float64(opt.t))
	update := func(w, gw, mw, vw []float64) {
		for i := range w {
			mw[i] = cfg.Beta1*mw[i] + (1-cfg.Beta1)*gw[i]
			vw[i] = cfg.Beta2*vw[i] + (1-cfg.Beta2)*gw[i]*gw[i]
			mhat := mw[i] / bc1
			vhat := vw[i] / bc2
			w[i] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + cfg.Eps)
		}
	}
	update(m.ConvW, g.convW, opt.m.convW, opt.v.convW)
	update(m.ConvB, g.convB, opt.m.convB, opt.v.convB)
	update(m.DenseW, g.denseW, opt.m.denseW, opt.v.denseW)
	update(m.DenseB, g.denseB, opt.m.denseB, opt.v.denseB)
}
