package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func smallModel(rng *rand.Rand) *Model {
	return NewModel(3, 2, 4, 3, rng)
}

func TestForwardProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := smallModel(rng)
	x := make([]float64, m.Rows*m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	p := m.Predict(x)
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %f", sum)
	}
	if got := m.PredictClass(x); p[got] < p[0] || p[got] < p[1] || p[got] < p[2] {
		t.Fatalf("PredictClass did not return argmax")
	}
}

// TestGradientCheck verifies every analytic gradient against central finite
// differences — the definitive test that backward() is correct.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := smallModel(rng)
	x := make([]float64, m.Rows*m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	label := 1

	a := m.newActs()
	m.forward(x, a)
	g := m.newGrads()
	m.backward(a, label, g)

	const h = 1e-6
	check := func(name string, w []float64, gw []float64) {
		for i := range w {
			orig := w[i]
			w[i] = orig + h
			lp := m.Loss(x, label)
			w[i] = orig - h
			lm := m.Loss(x, label)
			w[i] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-gw[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %.8f vs numeric %.8f", name, i, gw[i], numeric)
			}
		}
	}
	check("ConvW", m.ConvW, g.convW)
	check("ConvB", m.ConvB, g.convB)
	check("DenseW", m.DenseW, g.denseW)
	check("DenseB", m.DenseB, g.denseB)
}

// TestTrainingConvergesOnSeparableData trains on a synthetic task where the
// class is determined by which input region has the largest mean — the
// model must reach high accuracy quickly.
func TestTrainingConvergesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(6, 4, 8, 3, rng)
	n := 600
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, 24)
		cls := rng.Intn(3)
		for j := range x {
			x[j] = rng.NormFloat64() * 0.3
		}
		// Boost rows 2*cls and 2*cls+1.
		for r := 2 * cls; r <= 2*cls+1; r++ {
			for c := 0; c < 4; c++ {
				x[r*4+c] += 2
			}
		}
		xs[i], ys[i] = x, cls
	}
	m.FitNormalization(xs)
	stats, err := m.Train(xs, ys, TrainConfig{Epochs: 15, BatchSize: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 15 {
		t.Fatalf("expected 15 epoch stats, got %d", len(stats))
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %f -> %f", stats[0].Loss, stats[len(stats)-1].Loss)
	}
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("separable task accuracy %.3f < 0.95", acc)
	}
}

func TestTrainRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := smallModel(rng)
	good := make([]float64, m.Rows*m.Cols)
	if _, err := m.Train(nil, nil, TrainConfig{}); err == nil {
		t.Errorf("empty dataset must be rejected")
	}
	if _, err := m.Train([][]float64{good}, []int{99}, TrainConfig{}); err == nil {
		t.Errorf("out-of-range label must be rejected")
	}
	if _, err := m.Train([][]float64{{1, 2}}, []int{0}, TrainConfig{}); err == nil {
		t.Errorf("wrong input length must be rejected")
	}
	if _, err := m.Train([][]float64{good}, []int{0, 1}, TrainConfig{}); err == nil {
		t.Errorf("length mismatch must be rejected")
	}
}

func TestNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := smallModel(rng)
	xs := [][]float64{
		{1, 2, 3, 4, 5, 6},
		{3, 2, 5, 4, 9, 6},
	}
	m.FitNormalization(xs)
	// Means.
	want := []float64{2, 2, 4, 4, 7, 6}
	for i, w := range want {
		if math.Abs(m.Mean[i]-w) > 1e-12 {
			t.Fatalf("Mean[%d] = %f, want %f", i, m.Mean[i], w)
		}
	}
	// Zero-variance positions must get Std 1.
	if m.Std[1] != 1 || m.Std[3] != 1 || m.Std[5] != 1 {
		t.Fatalf("constant positions should have Std 1: %v", m.Std)
	}
	if m.Std[0] <= 0 || m.Std[4] <= 0 {
		t.Fatalf("non-constant positions need positive Std")
	}
}

// TestFitNormalizationEmptySet pins the regression where an empty training
// set divided by zero into NaN Mean/Std, poisoning every later prediction.
func TestFitNormalizationEmptySet(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := smallModel(rng)
	// Dirty the normalisation first so the empty fit provably resets it.
	xs := [][]float64{
		{1, 2, 3, 4, 5, 6},
		{3, 2, 5, 4, 9, 6},
	}
	m.FitNormalization(xs)
	m.FitNormalization(nil)
	for i := range m.Mean {
		if m.Mean[i] != 0 || m.Std[i] != 1 {
			t.Fatalf("empty fit must reset to identity: Mean[%d]=%v Std[%d]=%v", i, m.Mean[i], i, m.Std[i])
		}
	}
	x := []float64{1, 2, 3, 4, 5, 6}
	for _, p := range m.Predict(x) {
		if math.IsNaN(p) {
			t.Fatalf("prediction is NaN after empty FitNormalization")
		}
	}
}

// TestPredictDoesNotChurnAllocations checks the acts pool keeps the
// per-sample path at a constant small allocation count (just the returned
// probability slice for Predict, none for PredictClass).
func TestPredictDoesNotChurnAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race (sync.Pool caching is bypassed)")
	}
	rng := rand.New(rand.NewSource(22))
	m := NewModel(15, 10, 128, 10, rng)
	x := make([]float64, 150)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Warm the pool so the steady state is measured.
	m.Predict(x)
	m.PredictClass(x)
	if avg := testing.AllocsPerRun(100, func() { m.Predict(x) }); avg > 1 {
		t.Errorf("Predict allocates %.1f objects/op, want <= 1 (the result slice)", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { m.PredictClass(x) }); avg > 0 {
		t.Errorf("PredictClass allocates %.1f objects/op, want 0", avg)
	}
}

func TestBinaryAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewModel(2, 2, 2, 10, rng)
	// With random weights, check the bookkeeping, not the learning: the
	// binary accuracy over one sample is 1 exactly when prediction and
	// label fall on the same side of the threshold.
	x := []float64{1, 2, 3, 4}
	pred := m.PredictClass(x)
	for _, label := range []int{0, 9} {
		acc := m.BinaryAccuracy([][]float64{x}, []int{label}, 6)
		want := 0.0
		if (pred <= 6) == (label <= 6) {
			want = 1
		}
		if acc != want {
			t.Fatalf("binary accuracy = %f, want %f", acc, want)
		}
	}
	if m.BinaryAccuracy(nil, nil, 6) != 0 {
		t.Fatalf("empty set binary accuracy must be 0")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := smallModel(rng)
	x := make([]float64, m.Rows*m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Predict(x), m2.Predict(x)
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-15 {
			t.Fatalf("round-tripped model predicts differently")
		}
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("garbage")); err == nil {
		t.Fatalf("garbage must not decode")
	}
	// A structurally valid gob with inconsistent shapes must be rejected.
	rng := rand.New(rand.NewSource(9))
	m := smallModel(rng)
	m.ConvW = m.ConvW[:1]
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatalf("shape-inconsistent model must be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := smallModel(rng)
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumParams() != m.NumParams() {
		t.Fatalf("param counts differ after file round trip")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatalf("missing file must error")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// The paper's architecture: 15x10 input, 128 filters, 10 classes.
	m := NewModel(15, 10, 128, 10, rng)
	want := 128*15 + 128 + 10*1280 + 10
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() *Model {
		rng := rand.New(rand.NewSource(12))
		m := NewModel(4, 3, 4, 2, rng)
		xs := make([][]float64, 64)
		ys := make([]int, 64)
		drng := rand.New(rand.NewSource(13))
		for i := range xs {
			x := make([]float64, 12)
			for j := range x {
				x[j] = drng.NormFloat64()
			}
			xs[i] = x
			ys[i] = i % 2
		}
		m.FitNormalization(xs)
		// Single worker for a fully deterministic gradient order.
		if _, err := m.Train(xs, ys, TrainConfig{Epochs: 3, BatchSize: 16, Seed: 14, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	for i := range a.ConvW {
		if a.ConvW[i] != b.ConvW[i] {
			t.Fatalf("training is not deterministic with a fixed seed")
		}
	}
}

func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	m := NewModel(15, 10, 128, 10, rng)
	x := make([]float64, 150)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a := m.newActs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.forward(x, a)
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	m := NewModel(15, 10, 128, 10, rng)
	x := make([]float64, 150)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func BenchmarkPredictClass(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	m := NewModel(15, 10, 128, 10, rng)
	x := make([]float64, 150)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictClass(x)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	m := NewModel(15, 10, 128, 10, rng)
	xs := make([][]float64, 1024)
	ys := make([]int, 1024)
	for i := range xs {
		x := make([]float64, 150)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
		ys[i] = rng.Intn(10)
	}
	m.FitNormalization(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(xs, ys, TrainConfig{Epochs: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
