package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
)

// Save serialises the model (weights and normalisation) with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m)
}

// MaxModelBytes bounds how much a single serialised model may occupy.
// The real SLAP classifier is ≈15k parameters (~1 MiB of gob), so 64 MiB
// leaves two orders of magnitude of headroom while stopping a corrupt or
// hostile stream from ballooning memory during decode.
const MaxModelBytes = 64 << 20

// Load deserialises a model written by Save and validates its shape.
// Corrupted, truncated or oversized inputs return an error — never a
// panic, and never an attempt to allocate the absurd dimensions a
// damaged header may claim.
func Load(r io.Reader) (*Model, error) {
	lr := &io.LimitedReader{R: r, N: MaxModelBytes + 1}
	var m Model
	if err := gob.NewDecoder(lr).Decode(&m); err != nil {
		if lr.N <= 0 {
			return nil, fmt.Errorf("nn: model exceeds %d bytes: %w", MaxModelBytes, err)
		}
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("nn: model exceeds %d bytes", MaxModelBytes)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path. Errors — open failures and decode or
// shape-validation failures alike — carry the path, so a bad -model flag or
// registry entry names the offending file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open model %s: %w", path, err)
	}
	defer f.Close()
	m, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("nn: load model %s: %w", path, err)
	}
	return m, nil
}

// Dimension ceilings for validate(). The paper's network is 15×10 with
// 128 filters and 10 classes; these caps allow generous experimentation
// while rejecting the garbage dimensions a corrupted gob stream can
// claim (which would otherwise drive huge allocations downstream).
const (
	maxModelRows    = 1 << 12
	maxModelCols    = 1 << 12
	maxModelFilters = 1 << 16
	maxModelClasses = 1 << 16
)

func (m *Model) validate() error {
	if m.Rows <= 0 || m.Cols <= 0 || m.Filters <= 0 || m.Classes <= 0 {
		return fmt.Errorf("nn: invalid model shape %dx%d filters=%d classes=%d",
			m.Rows, m.Cols, m.Filters, m.Classes)
	}
	if m.Rows > maxModelRows || m.Cols > maxModelCols ||
		m.Filters > maxModelFilters || m.Classes > maxModelClasses {
		return fmt.Errorf("nn: implausible model shape %dx%d filters=%d classes=%d (limits %dx%d filters=%d classes=%d)",
			m.Rows, m.Cols, m.Filters, m.Classes,
			maxModelRows, maxModelCols, maxModelFilters, maxModelClasses)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"ConvW", len(m.ConvW), m.Filters * m.Rows},
		{"ConvB", len(m.ConvB), m.Filters},
		{"DenseW", len(m.DenseW), m.Classes * m.Filters * m.Cols},
		{"DenseB", len(m.DenseB), m.Classes},
		{"Mean", len(m.Mean), m.Rows * m.Cols},
		{"Std", len(m.Std), m.Rows * m.Cols},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("nn: %s has %d entries, want %d", c.name, c.got, c.want)
		}
	}
	// Std divides every input feature; zero, negative, NaN or Inf entries
	// would poison all downstream activations.
	for i, s := range m.Std {
		if !(s > 0) || math.IsInf(s, 0) {
			return fmt.Errorf("nn: Std[%d] = %v, want positive and finite", i, s)
		}
	}
	for _, w := range [][]float64{m.ConvW, m.ConvB, m.DenseW, m.DenseB, m.Mean} {
		for i, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: non-finite weight %v at index %d", v, i)
			}
		}
	}
	return nil
}
