package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save serialises the model (weights and normalisation) with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m)
}

// Load deserialises a model written by Save and validates its shape.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path. Errors — open failures and decode or
// shape-validation failures alike — carry the path, so a bad -model flag or
// registry entry names the offending file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open model %s: %w", path, err)
	}
	defer f.Close()
	m, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("nn: load model %s: %w", path, err)
	}
	return m, nil
}

func (m *Model) validate() error {
	if m.Rows <= 0 || m.Cols <= 0 || m.Filters <= 0 || m.Classes <= 0 {
		return fmt.Errorf("nn: invalid model shape %dx%d filters=%d classes=%d",
			m.Rows, m.Cols, m.Filters, m.Classes)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"ConvW", len(m.ConvW), m.Filters * m.Rows},
		{"ConvB", len(m.ConvB), m.Filters},
		{"DenseW", len(m.DenseW), m.Classes * m.Filters * m.Cols},
		{"DenseB", len(m.DenseB), m.Classes},
		{"Mean", len(m.Mean), m.Rows * m.Cols},
		{"Std", len(m.Std), m.Rows * m.Cols},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("nn: %s has %d entries, want %d", c.name, c.got, c.want)
		}
	}
	return nil
}
