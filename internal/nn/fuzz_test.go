package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// modelBytes serialises a small valid model for corpus seeding.
func modelBytes(t testing.TB) []byte {
	t.Helper()
	m := NewModel(15, 10, 8, 10, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad feeds arbitrary bytes — seeded with a valid model, its
// truncations, and garbage — into Load. The invariant is simple: Load
// either returns a shape-valid model or an error; it never panics and
// never lets a damaged header force absurd allocations.
func FuzzLoad(f *testing.F) {
	valid := modelBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	// A valid prefix with flipped tail bytes mimics disk corruption.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-4] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.validate(); err != nil {
			t.Fatalf("Load returned an invalid model: %v", err)
		}
	})
}

func TestLoadRejectsTruncation(t *testing.T) {
	valid := modelBytes(t)
	for _, n := range []int{0, 1, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		if _, err := Load(bytes.NewReader(valid[:n])); err == nil {
			t.Errorf("Load accepted a model truncated to %d of %d bytes", n, len(valid))
		}
	}
}

// TestLoadRejectsAbsurdDims builds a gob stream whose header claims huge
// dimensions with tiny weight slices: validate must reject it by bound
// check, not by attempting Filters*Cols*Classes-sized work.
func TestLoadRejectsAbsurdDims(t *testing.T) {
	m := &Model{
		Rows: 1 << 20, Cols: 1 << 20, Filters: 1 << 20, Classes: 1 << 20,
		ConvW: []float64{1}, ConvB: []float64{1},
		DenseW: []float64{1}, DenseB: []float64{1},
		Mean: []float64{0}, Std: []float64{1},
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err == nil {
		t.Fatalf("Load accepted model claiming %dx%d shape", got.Rows, got.Cols)
	}
	if !strings.Contains(err.Error(), "implausible") {
		t.Errorf("want bound-check rejection, got: %v", err)
	}
}

func TestLoadRejectsBadNormalisation(t *testing.T) {
	for name, mutate := range map[string]func(*Model){
		"zero std":     func(m *Model) { m.Std[3] = 0 },
		"negative std": func(m *Model) { m.Std[0] = -1 },
		"nan std":      func(m *Model) { m.Std[1] = math.NaN() },
		"inf weight":   func(m *Model) { m.ConvW[0] = math.Inf(1) },
		"nan weight":   func(m *Model) { m.DenseW[2] = math.NaN() },
	} {
		t.Run(name, func(t *testing.T) {
			m := NewModel(15, 10, 8, 10, rand.New(rand.NewSource(1)))
			mutate(m)
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(&buf); err == nil {
				t.Error("Load accepted a model with broken normalisation/weights")
			}
		})
	}
}

func TestLoadRoundTrip(t *testing.T) {
	m := NewModel(15, 10, 8, 10, rand.New(rand.NewSource(42)))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != m.NumParams() || got.Classes != m.Classes {
		t.Errorf("round-trip changed shape: %d params %d classes, want %d/%d",
			got.NumParams(), got.Classes, m.NumParams(), m.Classes)
	}
}
