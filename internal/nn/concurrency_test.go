package nn

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestPredictParallel is the concurrent-reader regression test for the
// documented guarantee on Predict/PredictClass: many goroutines sharing one
// Model must produce exactly the sequential answers, with no shared scratch
// (run under -race in CI).
func TestPredictParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewModel(15, 10, 32, 10, rng)
	const samples = 64
	xs := make([][]float64, samples)
	for i := range xs {
		x := make([]float64, 150)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}

	wantProbs := make([][]float64, samples)
	wantClass := make([]int, samples)
	for i, x := range xs {
		wantProbs[i] = m.Predict(x)
		wantClass[i] = m.PredictClass(x)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine sweeps all samples from a different offset so
			// concurrent calls overlap on the same inputs.
			for k := 0; k < samples; k++ {
				i := (k + g*7) % samples
				probs := m.Predict(xs[i])
				for c := range probs {
					if probs[c] != wantProbs[i][c] {
						errs <- "Predict diverged under concurrency"
						return
					}
				}
				if m.PredictClass(xs[i]) != wantClass[i] {
					errs <- "PredictClass diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestLoadFileErrorsNamePath checks the error-wrapping contract: a missing
// or corrupt artifact surfaces its path in the failure message.
func TestLoadFileErrorsNamePath(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.gob")
	if _, err := LoadFile(missing); err == nil {
		t.Fatal("expected error for missing model file")
	} else if !strings.Contains(err.Error(), "nope.gob") {
		t.Errorf("missing-file error does not name the path: %v", err)
	}

	corrupt := filepath.Join(dir, "corrupt.gob")
	if err := os.WriteFile(corrupt, []byte("this is not a gob model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(corrupt); err == nil {
		t.Fatal("expected error for corrupt model file")
	} else if !strings.Contains(err.Error(), "corrupt.gob") {
		t.Errorf("corrupt-file error does not name the path: %v", err)
	}
}
