// Package nn implements, from scratch on the standard library, the small
// convolutional classifier of paper §IV-B: Conv(128 filters, 15×1, stride
// 1) → ReLU → flatten (1280) → dense (10) → softmax, trained with Adam on
// the sparse categorical cross-entropy loss.
//
// The model is tiny (≈15k parameters), so everything is plain float64
// slices; training parallelises across minibatch samples with goroutines.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Model is the SLAP cut classifier.
type Model struct {
	// Rows and Cols describe the input matrix (15×10 cut embeddings).
	Rows, Cols int
	// Filters is the number of 15×1 convolution filters (128).
	Filters int
	// Classes is the number of QoR classes (10).
	Classes int

	// ConvW holds Filters×Rows filter weights; ConvB the filter biases.
	ConvW, ConvB []float64
	// DenseW holds Classes×(Filters*Cols) weights; DenseB the biases.
	DenseW, DenseB []float64

	// Normalisation applied to inputs before the network (fit on the
	// training set): x' = (x - Mean[i]) / Std[i] per matrix position.
	Mean, Std []float64
}

// NewModel creates a model with Glorot-uniform initial weights.
func NewModel(rows, cols, filters, classes int, rng *rand.Rand) *Model {
	m := &Model{
		Rows: rows, Cols: cols, Filters: filters, Classes: classes,
		ConvW:  make([]float64, filters*rows),
		ConvB:  make([]float64, filters),
		DenseW: make([]float64, classes*filters*cols),
		DenseB: make([]float64, classes),
		Mean:   make([]float64, rows*cols),
		Std:    ones(rows * cols),
	}
	glorot(m.ConvW, rows, 1, rng)
	glorot(m.DenseW, filters*cols, classes, rng)
	return m
}

func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func glorot(w []float64, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * limit
	}
}

// FitNormalization computes per-position mean and standard deviation over
// the training inputs. Positions with zero variance get Std 1. An empty
// training set resets to the identity normalisation (Mean 0, Std 1) instead
// of dividing by zero into NaN weights.
func (m *Model) FitNormalization(xs [][]float64) {
	n := m.Rows * m.Cols
	if len(xs) == 0 {
		for i := 0; i < n; i++ {
			m.Mean[i] = 0
			m.Std[i] = 1
		}
		return
	}
	mean := make([]float64, n)
	for _, x := range xs {
		for i := 0; i < n; i++ {
			mean[i] += x[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(len(xs))
	}
	varr := make([]float64, n)
	for _, x := range xs {
		for i := 0; i < n; i++ {
			d := x[i] - mean[i]
			varr[i] += d * d
		}
	}
	for i := range varr {
		sd := math.Sqrt(varr[i] / float64(len(xs)))
		if sd < 1e-12 {
			sd = 1
		}
		m.Mean[i] = mean[i]
		m.Std[i] = sd
	}
}

// acts holds per-sample forward activations for the backward pass.
type acts struct {
	norm  []float64 // normalised input, Rows*Cols
	conv  []float64 // pre-activation conv output, Filters*Cols
	relu  []float64 // post-ReLU, Filters*Cols
	probs []float64 // softmax output, Classes
}

func (m *Model) newActs() *acts {
	return &acts{
		norm:  make([]float64, m.Rows*m.Cols),
		conv:  make([]float64, m.Filters*m.Cols),
		relu:  make([]float64, m.Filters*m.Cols),
		probs: make([]float64, m.Classes),
	}
}

// actsPool recycles activation scratch across Predict/PredictClass/Loss
// calls; forward overwrites every entry, and an entry is reused only when
// its shapes match the model, so differently-sized models can share the
// pool safely.
var actsPool sync.Pool

func (m *Model) getActs() *acts {
	if v := actsPool.Get(); v != nil {
		a := v.(*acts)
		if len(a.norm) == m.Rows*m.Cols && len(a.conv) == m.Filters*m.Cols && len(a.probs) == m.Classes {
			return a
		}
	}
	return m.newActs()
}

func putActs(a *acts) { actsPool.Put(a) }

// forward runs the network on one input, filling a.
func (m *Model) forward(x []float64, a *acts) {
	n := m.Rows * m.Cols
	for i := 0; i < n; i++ {
		a.norm[i] = (x[i] - m.Mean[i]) / m.Std[i]
	}
	// Conv: out[f][j] = sum_i W[f][i] * X[i][j] + b[f].
	for f := 0; f < m.Filters; f++ {
		w := m.ConvW[f*m.Rows : (f+1)*m.Rows]
		base := f * m.Cols
		for j := 0; j < m.Cols; j++ {
			s := m.ConvB[f]
			for i := 0; i < m.Rows; i++ {
				s += w[i] * a.norm[i*m.Cols+j]
			}
			a.conv[base+j] = s
			if s > 0 {
				a.relu[base+j] = s
			} else {
				a.relu[base+j] = 0
			}
		}
	}
	// Dense + softmax.
	flat := m.Filters * m.Cols
	maxLogit := math.Inf(-1)
	for c := 0; c < m.Classes; c++ {
		s := m.DenseB[c]
		w := m.DenseW[c*flat : (c+1)*flat]
		for k := 0; k < flat; k++ {
			s += w[k] * a.relu[k]
		}
		a.probs[c] = s
		if s > maxLogit {
			maxLogit = s
		}
	}
	var sum float64
	for c := range a.probs {
		a.probs[c] = math.Exp(a.probs[c] - maxLogit)
		sum += a.probs[c]
	}
	for c := range a.probs {
		a.probs[c] /= sum
	}
}

// Predict returns the class probabilities for one input.
//
// Predict and PredictClass are safe for concurrent readers: each call takes
// its own activation scratch (pooled, never shared while in use) and only
// reads the weight slices, so one deserialised Model may be shared across
// mapping goroutines and server requests without copying. (Training methods
// mutate weights and must not run concurrently with inference.)
func (m *Model) Predict(x []float64) []float64 {
	a := m.getActs()
	m.forward(x, a)
	out := make([]float64, m.Classes)
	copy(out, a.probs)
	putActs(a)
	return out
}

// PredictClass returns the argmax class for one input. Like Predict, it is
// safe for concurrent readers (pooled scratch, read-only weights).
func (m *Model) PredictClass(x []float64) int {
	a := m.getActs()
	m.forward(x, a)
	best, bi := math.Inf(-1), 0
	for c, p := range a.probs {
		if p > best {
			best, bi = p, c
		}
	}
	putActs(a)
	return bi
}

// grads mirrors the parameter shapes.
type grads struct {
	convW, convB, denseW, denseB []float64
}

func (m *Model) newGrads() *grads {
	return &grads{
		convW:  make([]float64, len(m.ConvW)),
		convB:  make([]float64, len(m.ConvB)),
		denseW: make([]float64, len(m.DenseW)),
		denseB: make([]float64, len(m.DenseB)),
	}
}

func (g *grads) zero() {
	for _, s := range [][]float64{g.convW, g.convB, g.denseW, g.denseB} {
		for i := range s {
			s[i] = 0
		}
	}
}

func (g *grads) add(o *grads) {
	for i := range g.convW {
		g.convW[i] += o.convW[i]
	}
	for i := range g.convB {
		g.convB[i] += o.convB[i]
	}
	for i := range g.denseW {
		g.denseW[i] += o.denseW[i]
	}
	for i := range g.denseB {
		g.denseB[i] += o.denseB[i]
	}
}

func (g *grads) scale(s float64) {
	for _, sl := range [][]float64{g.convW, g.convB, g.denseW, g.denseB} {
		for i := range sl {
			sl[i] *= s
		}
	}
}

// backward accumulates the gradient of the cross-entropy loss for one
// sample into g. forward must have been called on a first.
func (m *Model) backward(a *acts, label int, g *grads) {
	flat := m.Filters * m.Cols
	// dLogits = probs - onehot(label).
	dRelu := make([]float64, flat)
	for c := 0; c < m.Classes; c++ {
		d := a.probs[c]
		if c == label {
			d--
		}
		g.denseB[c] += d
		w := m.DenseW[c*flat : (c+1)*flat]
		gw := g.denseW[c*flat : (c+1)*flat]
		for k := 0; k < flat; k++ {
			gw[k] += d * a.relu[k]
			dRelu[k] += d * w[k]
		}
	}
	// Through ReLU into conv params.
	for f := 0; f < m.Filters; f++ {
		base := f * m.Cols
		gw := g.convW[f*m.Rows : (f+1)*m.Rows]
		for j := 0; j < m.Cols; j++ {
			if a.conv[base+j] <= 0 {
				continue
			}
			d := dRelu[base+j]
			g.convB[f] += d
			for i := 0; i < m.Rows; i++ {
				gw[i] += d * a.norm[i*m.Cols+j]
			}
		}
	}
}

// Loss returns the cross-entropy loss of one sample.
func (m *Model) Loss(x []float64, label int) float64 {
	a := m.getActs()
	m.forward(x, a)
	p := a.probs[label]
	if p < 1e-15 {
		p = 1e-15
	}
	putActs(a)
	return -math.Log(p)
}

// Accuracy returns the top-1 accuracy over a dataset.
func (m *Model) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if m.PredictClass(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// BinaryAccuracy collapses the 10 QoR classes to keep (class <= threshold)
// versus drop, the paper's binary-classifier view (§V-B, threshold 6).
func (m *Model) BinaryAccuracy(xs [][]float64, ys []int, threshold int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		pred := m.PredictClass(x) <= threshold
		want := ys[i] <= threshold
		if pred == want {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// NumParams returns the trainable parameter count.
func (m *Model) NumParams() int {
	return len(m.ConvW) + len(m.ConvB) + len(m.DenseW) + len(m.DenseB)
}

func (m *Model) checkInput(x []float64) error {
	if len(x) != m.Rows*m.Cols {
		return fmt.Errorf("nn: input length %d, want %d", len(x), m.Rows*m.Cols)
	}
	return nil
}
