//go:build race

package nn

// raceEnabled lets allocation-count assertions skip under -race: the race
// runtime bypasses sync.Pool caching, so AllocsPerRun is not meaningful.
const raceEnabled = true
