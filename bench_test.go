// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index). The
// benchmarks exercise the same code paths as cmd/slap-experiments but at
// reduced sizes so `go test -bench=. -benchmem` completes in minutes; the
// full regeneration is `go run ./cmd/slap-experiments -profile fast|paper`.
package slap_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/experiments"
	"slap/internal/library"
	"slap/internal/mapcache"
	"slap/internal/mapper"
	"slap/internal/opt"
)

// benchProfile is a reduced profile for benchmark iterations.
func benchProfile() experiments.Profile {
	p := experiments.Fast()
	p.Name = "bench"
	p.AdderBits, p.BarBits, p.C6288Bits = 32, 16, 8
	p.MaxWay, p.MaxBits = 2, 16
	p.RCBigBits, p.RCSmallBits = 48, 24
	p.SinBits, p.ALUBits = 8, 16
	p.Booth1Bits, p.Booth2Bits = 8, 10
	p.SquareBits, p.AESRounds, p.MultBits = 10, 1, 10
	p.TrainMaps, p.TrainEpochs, p.Filters = 60, 8, 16
	p.Fig1Samples = 32
	p.ImportanceRounds = 2
	return p
}

var (
	trainOnce    sync.Once
	trainOutcome *experiments.TrainOutcome
	trainErr     error
)

// sharedTraining trains one model reused by every benchmark needing SLAP.
func sharedTraining(b *testing.B) *experiments.TrainOutcome {
	b.Helper()
	trainOnce.Do(func() {
		trainOutcome, trainErr = experiments.RunTraining(benchProfile(), library.ASAP7ish(), nil)
	})
	if trainErr != nil {
		b.Fatal(trainErr)
	}
	return trainOutcome
}

// BenchmarkFig1DesignSpace regenerates the paper's Fig. 1: the QoR
// distribution of random-shuffle mappings against the default heuristic.
func BenchmarkFig1DesignSpace(b *testing.B) {
	p := benchProfile()
	lib := library.ASAP7ish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFig1(p, func() *aig.AIG { return circuits.BoothMultiplier(8) }, lib, nil)
		if err != nil {
			b.Fatal(err)
		}
		minD, maxD, _, _ := fig.Spread()
		if maxD <= minD {
			b.Fatal("no QoR dispersion in Fig. 1 sample")
		}
	}
}

// BenchmarkModelAccuracy regenerates the §V-B experiment: training-data
// generation from random maps plus CNN training and validation accuracy.
func BenchmarkModelAccuracy(b *testing.B) {
	p := benchProfile()
	lib := library.ASAP7ish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		tr, err := experiments.RunTraining(p, lib, nil)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Report.BinaryAccuracy <= 0.5 {
			b.Fatalf("binary accuracy %.3f at chance level", tr.Report.BinaryAccuracy)
		}
	}
}

// BenchmarkTable2 regenerates one Table II row per sub-benchmark: the
// design is mapped under the three flows (vanilla ABC heuristic, Unlimited,
// SLAP) and the mapped netlists are verified against the subject graph.
func BenchmarkTable2(b *testing.B) {
	p := benchProfile()
	lib := library.ASAP7ish()
	tr := sharedTraining(b)
	for _, d := range experiments.Designs(p) {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			g := d.Build()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				abc, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
				if err != nil {
					b.Fatal(err)
				}
				unl, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.UnlimitedPolicy{}})
				if err != nil {
					b.Fatal(err)
				}
				sl, err := tr.SLAP.Map(g)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, r := range []*mapper.Result{abc, unl, sl} {
						if err := r.Netlist.EquivalentTo(g, 2, rng); err != nil {
							b.Fatalf("%s: %v", r.PolicyName, err)
						}
					}
					b.ReportMetric(abc.Delay, "abc-ps")
					b.ReportMetric(sl.Delay, "slap-ps")
					b.ReportMetric(float64(sl.CutsConsidered)/float64(abc.CutsConsidered), "cuts-ratio")
				}
			}
		})
	}
}

// BenchmarkFig5Importance regenerates the permutation feature-importance
// experiment over the shared model's validation set.
func BenchmarkFig5Importance(b *testing.B) {
	p := benchProfile()
	tr := sharedTraining(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := experiments.RunFig5(p, tr, nil)
		if len(fig.Importances) != 29 {
			b.Fatalf("expected 29 feature importances, got %d", len(fig.Importances))
		}
	}
}

// BenchmarkAblationSortPolicies regenerates the §III single-attribute
// sorting comparison on a subset of designs.
func BenchmarkAblationSortPolicies(b *testing.B) {
	p := benchProfile()
	lib := library.ASAP7ish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abl, err := experiments.RunAblation(p, lib, 3, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(abl.Designs) != 3 {
			b.Fatal("ablation ran on wrong design count")
		}
	}
}

// BenchmarkSLAPInference isolates the prepare_map + inference + read_cuts
// path (cut enumeration, embedding, CNN classification, filtering).
func BenchmarkSLAPInference(b *testing.B) {
	tr := sharedTraining(b)
	g := circuits.CarryLookaheadAdder(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tr.SLAP.FilterCuts(g)
		if res.TotalCuts == 0 {
			b.Fatal("no cuts survived")
		}
	}
}

// BenchmarkCutEnumeration measures the mapper's first stage — priority-cuts
// enumeration — sequentially (workers1) and under the level-wavefront worker
// pool (workersAll). The two variants produce identical cut sets; the speedup
// between them is the headline number of the concurrency architecture.
func BenchmarkCutEnumeration(b *testing.B) {
	g := circuits.ArrayMultiplier(12)
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers1", 1},
		{"workersAll", 0},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := &cuts.Enumerator{G: g, Policy: cuts.DefaultPolicy{}, Workers: tc.workers}
				if res := e.Run(); res.TotalCuts == 0 {
					b.Fatal("enumeration produced no cuts")
				}
			}
		})
	}
}

// BenchmarkEndToEndSLAPMap measures the complete SLAP mapping flow on a
// mid-size multiplier under both pipelines. two-phase enumerates every cut
// before matching; streaming fuses matching into the enumeration wavefront,
// retires cut storage level by level, and reuses a pooled arena across
// iterations — the results are byte-identical, only time/allocations
// differ.
func BenchmarkEndToEndSLAPMap(b *testing.B) {
	tr := sharedTraining(b)
	g := circuits.ArrayMultiplier(8)
	b.Run("two-phase", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tr.SLAP.Map(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		pool := cuts.NewPool(1)
		tr.SLAP.Pool = pool
		defer func() { tr.SLAP.Pool = nil }()
		for i := 0; i < b.N; i++ {
			if _, err := tr.SLAP.MapStream(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMultiRoundMap compares the classic single-pass SLAP map against
// the 4-round engine (area-flow recovery + exact-area, with and without a
// choice view) on the same circuit — the per-round cost of the recovery
// rounds rides on the one enumeration+inference pass, so the marginal time
// and allocation of extra rounds is the interesting number.
func BenchmarkMultiRoundMap(b *testing.B) {
	tr := sharedTraining(b)
	g := circuits.ArrayMultiplier(8)
	pool := cuts.NewPool(1)
	for _, tc := range []struct {
		name    string
		rounds  int
		choices bool
	}{
		{"rounds1", 1, false},
		{"rounds4", 4, false},
		{"rounds4choices", 4, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			s := *tr.SLAP
			s.Rounds = tc.rounds
			s.Choices = tc.choices
			s.Pool = pool
			for i := 0; i < b.N; i++ {
				if _, err := s.MapStream(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingDataGeneration isolates the random-shuffle mapping
// data-generation loop of §IV-B.
func BenchmarkTrainingDataGeneration(b *testing.B) {
	lib := library.ASAP7ish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Train(core.TrainOptions{
			Library:        lib,
			MapsPerCircuit: 20,
			Epochs:         1,
			Filters:        8,
			Seed:           int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Design-choice ablations (DESIGN.md §5) ---

// BenchmarkAblationBuffering quantifies the post-mapping fanout-buffering
// pass: without it, high-fanout nets distort the linear load-delay model.
func BenchmarkAblationBuffering(b *testing.B) {
	lib := library.ASAP7ish()
	g := circuits.AES(1)
	for _, tc := range []struct {
		name      string
		maxFanout int
	}{
		{"unbuffered", -1},
		{"buffered16", 16},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mapper.Map(g, mapper.Options{
					Library:   lib,
					Policy:    cuts.DefaultPolicy{},
					MaxFanout: tc.maxFanout,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Delay, "delay-ps")
					b.ReportMetric(res.Area, "area-um2")
				}
			}
		})
	}
}

// BenchmarkAblationAreaRecovery quantifies the area-flow + exact-area
// passes against the pure delay-optimal cover.
func BenchmarkAblationAreaRecovery(b *testing.B) {
	lib := library.ASAP7ish()
	g := circuits.BoothMultiplier(10)
	for _, tc := range []struct {
		name string
		off  bool
	}{
		{"with-recovery", false},
		{"delay-only", true},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mapper.Map(g, mapper.Options{
					Library:        lib,
					Policy:         cuts.DefaultPolicy{},
					NoAreaRecovery: tc.off,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Delay, "delay-ps")
					b.ReportMetric(res.Area, "area-um2")
				}
			}
		})
	}
}

// BenchmarkAblationSupergates quantifies single-level supergates (paper
// §II context: reducing structural bias in matching).
func BenchmarkAblationSupergates(b *testing.B) {
	base := library.ASAP7ish()
	sg, err := base.WithSupergates(0)
	if err != nil {
		b.Fatal(err)
	}
	g := circuits.ALUCompare(24)
	for _, tc := range []struct {
		name string
		lib  *library.Library
	}{
		{"base-library", base},
		{"with-supergates", sg},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mapper.Map(g, mapper.Options{Library: tc.lib, Policy: cuts.DefaultPolicy{}})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Delay, "delay-ps")
					b.ReportMetric(res.Area, "area-um2")
				}
			}
		})
	}
}

// BenchmarkAblationBalance quantifies pre-mapping AND-tree balancing on an
// AND-chain-dominated design (sum-of-products); balancing reduces subject
// depth ~3x there. On carry/XOR-dominated arithmetic it can instead hurt
// mapped delay by disturbing cut-friendly structure — the structural-bias
// effect the paper's §II background discusses.
func BenchmarkAblationBalance(b *testing.B) {
	lib := library.ASAP7ish()
	raw := sopChain(32)
	balanced := opt.Optimize(raw)
	for _, tc := range []struct {
		name string
		g    *aig.AIG
	}{
		{"raw-subject", raw},
		{"balanced", balanced},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mapper.Map(tc.g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Delay, "delay-ps")
					b.ReportMetric(float64(tc.g.MaxLevel()), "aig-depth")
				}
			}
		})
	}
}

// sopChain builds a linear sum-of-products chain, the classic balancing
// target.
func sopChain(n int) *aig.AIG {
	bd := circuits.NewBuilder("sop_chain")
	in := bd.Input("x", n)
	o := aig.ConstFalse
	for i := 0; i+1 < n; i++ {
		o = bd.G.Or(o, bd.G.And(in[i], in[i+1]))
	}
	bd.G.AddPO("f", o)
	all := aig.ConstTrue
	for i := 0; i < n; i++ {
		all = bd.G.And(all, in[i])
	}
	bd.G.AddPO("all", all)
	return bd.G
}

// BenchmarkRepeatReplay measures the serving win of the content-addressed
// result cache on a repeat-heavy replay: every iteration resubmits the
// same design. "cold" re-runs the full SLAP flow each time; "cached"
// answers from the result cache in O(1) after one warm-up mapping.
func BenchmarkRepeatReplay(b *testing.B) {
	tr := sharedTraining(b)
	s := tr.SLAP
	g := circuits.BoothMultiplier(8)
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.MapStreamContext(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := mapcache.New(0)
		opt := core.CachedOptions{Streaming: true}
		if _, _, err := s.MapCached(ctx, g, cache, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, o, err := s.MapCached(ctx, g, cache, opt)
			if err != nil {
				b.Fatal(err)
			}
			if !o.Hit {
				b.Fatal("replay iteration missed the cache")
			}
		}
	})
}

// BenchmarkECORemap measures the delta-remapping win on a ~5%-edited
// design (localised near the POs, the shape real ECOs take): "cold" maps
// the edited design from scratch, "delta" reuses the baseline snapshot and
// re-runs classification only on the dirty cone. Both produce byte-
// identical netlists (pinned by TestSlapMapDeltaByteIdentical).
func BenchmarkECORemap(b *testing.B) {
	tr := sharedTraining(b)
	s := tr.SLAP
	base := circuits.BoothMultiplier(8)
	// The edit flips half the ANDs in the last 10% of the id range — about
	// 5% of the design overall.
	edited := circuits.PerturbSpan(base, 11, 0.9, 1, 0.5)
	ctx := context.Background()
	_, snap, err := s.MapStreamCaptureContext(ctx, base)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.MapStreamContext(ctx, edited); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		var dirty float64
		for i := 0; i < b.N; i++ {
			_, _, st, err := s.MapDeltaContext(ctx, edited, snap)
			if err != nil {
				b.Fatal(err)
			}
			dirty = st.DirtyFraction
		}
		b.ReportMetric(dirty, "dirty-frac")
	})
}
