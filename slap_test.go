package slap_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"slap"
)

// TestFacadeQuickstart exercises the public API end to end: graph
// construction, mapping under two policies, AIGER round trip, custom
// library parsing, model save/load.
func TestFacadeQuickstart(t *testing.T) {
	g := slap.NewAIG("facade")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	g.AddPO("f", g.Or(g.And(a, b), g.Xor(b, c)))

	lib := slap.ASAP7ish()
	res, err := slap.Map(g, slap.MapOptions{Library: lib, Policy: slap.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Area <= 0 || res.Delay <= 0 {
		t.Fatalf("degenerate QoR: %+v", res)
	}
	if err := res.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}

	unl, err := slap.Map(g, slap.MapOptions{Library: lib, Policy: slap.UnlimitedPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if unl.CutsConsidered < res.CutsConsidered {
		t.Fatalf("unlimited saw fewer cuts than default")
	}

	// AIGER round trip through the facade.
	var buf bytes.Buffer
	if err := g.WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := slap.ReadAAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPIs() != g.NumPIs() || h.NumPOs() != g.NumPOs() {
		t.Fatalf("AIGER round trip changed the interface")
	}

	// Custom library parsing.
	custom, err := slap.ParseLibrary("mini", strings.NewReader(
		"GATE inv 1 O=!a DELAY 5 SLOPE 1\nGATE nand2 1.5 O=!(a&b) DELAY 9 SLOPE 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := slap.Map(g, slap.MapOptions{Library: custom, Policy: slap.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeTrainAndPersist runs a miniature end-to-end SLAP training and
// model persistence through the facade.
func TestFacadeTrainAndPersist(t *testing.T) {
	if testing.Short() {
		t.Skip("training flow skipped in -short mode")
	}
	lib := slap.ASAP7ish()
	trained, report, err := slap.Train(slap.TrainOptions{
		Library:        lib,
		MapsPerCircuit: 30,
		Epochs:         4,
		Filters:        8,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.BinaryAccuracy <= 0.4 {
		t.Fatalf("binary accuracy %.3f implausibly low", report.BinaryAccuracy)
	}

	var buf bytes.Buffer
	if err := trained.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	model, err := slap.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := slap.NewSLAP(model, lib)

	g := slap.NewAIG("target")
	var lits []slap.Lit
	for i := 0; i < 6; i++ {
		lits = append(lits, g.AddPI(""))
	}
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = g.Xor(acc, g.And(acc, l).Not())
	}
	g.AddPO("f", acc)

	res, err := s2.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(6))); err != nil {
		t.Fatal(err)
	}
}
