module slap

go 1.22
