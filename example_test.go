package slap_test

import (
	"fmt"
	"strings"

	"slap"
)

// ExampleMap demonstrates the core flow: build a subject graph, map it with
// the vanilla heuristic, and inspect the result.
func ExampleMap() {
	g := slap.NewAIG("and3")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	g.AddPO("f", g.And(g.And(a, b), c))

	res, err := slap.Map(g, slap.MapOptions{
		Library: slap.ASAP7ish(),
		Policy:  slap.DefaultPolicy{},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A 3-input AND maps to a single and3 cell.
	fmt.Println("cells:", res.Netlist.NumCells())
	for name := range res.Netlist.CellCounts() {
		fmt.Println("cell:", name)
	}
	// Output:
	// cells: 1
	// cell: and3
}

// ExampleParseLibrary shows the genlib-like cell description format.
func ExampleParseLibrary() {
	lib, err := slap.ParseLibrary("mini", strings.NewReader(`
# name     area  function  timing
GATE inv   0.5   O=!a      DELAY 5 SLOPE 1.5
GATE nand2 0.8   O=!(a&b)  DELAY 9 SLOPE 2.0
GATE aoi21 1.0   O=!((a&b)|c) DELAY 10 SLOPE 2.5
`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("gates:", len(lib.Gates))
	fmt.Println("inverter:", lib.Inv.Name)
	// Output:
	// gates: 3
	// inverter: inv
}

// ExampleReadAAG parses an ASCII AIGER file (here: f = a AND b).
func ExampleReadAAG() {
	src := `aag 3 2 0 1 1
2
4
6
6 2 4
i0 a
i1 b
o0 f
`
	g, err := slap.ReadAAG(strings.NewReader(src))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pi=%d po=%d and=%d\n", g.NumPIs(), g.NumPOs(), g.NumAnds())
	// Output:
	// pi=2 po=1 and=1
}
