// Package slap is a from-scratch Go implementation of SLAP — a Supervised
// Learning Approach for Priority-cuts technology mapping (Lau Neto et al.,
// DAC 2021) — together with every substrate the paper depends on: an
// And-Inverter-Graph subject-graph representation, k-feasible priority-cuts
// enumeration, NPN Boolean matching against a standard-cell library, an
// ABC-style delay-oriented mapper with area recovery, static timing
// analysis, benchmark circuit generators, and a small CNN stack used to
// learn cut sorting/filtering heuristics.
//
// This root package is a thin facade over the implementation packages; it
// re-exports the types and entry points a downstream user needs:
//
//	g := slap.NewAIG("my_design")        // build a subject graph
//	lib := slap.ASAP7ish()               // the built-in cell library
//	res, err := slap.Map(g, slap.MapOptions{Library: lib, Policy: slap.DefaultPolicy{}})
//
//	trained, report, err := slap.Train(slap.TrainOptions{Library: lib})
//	res, err = trained.Map(g)            // ML-filtered mapping
//
// See the examples/ directory for complete programs and DESIGN.md for the
// module map and the paper-reproduction notes.
package slap

import (
	"io"

	"slap/internal/aig"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
	"slap/internal/netlist"
	"slap/internal/nn"
)

// AIG is an And-Inverter Graph subject graph.
type AIG = aig.AIG

// Lit is an AIG edge literal (2*node + complement bit).
type Lit = aig.Lit

// Library is a standard-cell library.
type Library = library.Library

// Gate is one standard cell.
type Gate = library.Gate

// Netlist is a technology-mapped gate-level netlist.
type Netlist = netlist.Netlist

// MapOptions configures a mapping run.
type MapOptions = mapper.Options

// MapResult is the outcome of a mapping run.
type MapResult = mapper.Result

// CutPolicy orders and prunes per-node cut lists during enumeration.
type CutPolicy = cuts.Policy

// DefaultPolicy is the vanilla ABC heuristic: sort by leaf count, filter
// dominated cuts, keep 250 per node.
type DefaultPolicy = cuts.DefaultPolicy

// UnlimitedPolicy keeps every enumerated cut (the paper's "Unlimited ABC").
type UnlimitedPolicy = cuts.UnlimitedPolicy

// ShufflePolicy randomly permutes and truncates cut lists (paper §III).
type ShufflePolicy = cuts.ShufflePolicy

// SLAP is a trained ML cut-filtering instance.
type SLAP = core.SLAP

// TrainOptions configures end-to-end SLAP training.
type TrainOptions = core.TrainOptions

// TrainReport summarises a training run.
type TrainReport = core.TrainReport

// Model is the CNN cut classifier.
type Model = nn.Model

// NewAIG returns an empty subject graph containing only the constant node.
func NewAIG(name string) *AIG { return aig.New(name) }

// ReadAAG parses an ASCII AIGER (aag) combinational file.
func ReadAAG(r io.Reader) (*AIG, error) { return aig.ReadAAG(r) }

// ASAP7ish returns the built-in synthetic 7nm-flavoured cell library.
func ASAP7ish() *Library { return library.ASAP7ish() }

// ParseLibrary reads a library in the genlib-like text format.
func ParseLibrary(name string, r io.Reader) (*Library, error) {
	return library.Parse(name, r)
}

// Map runs the technology-mapping flow on g.
func Map(g *AIG, opt MapOptions) (*MapResult, error) { return mapper.Map(g, opt) }

// Train generates training data, fits the SLAP classifier and returns the
// trained instance plus an accuracy report.
func Train(opt TrainOptions) (*SLAP, *TrainReport, error) { return core.Train(opt) }

// NewSLAP wraps a deserialised model and a library into a SLAP instance
// with the paper's default thresholds.
func NewSLAP(model *Model, lib *Library) *SLAP { return core.New(model, lib) }

// LoadModel reads a model saved with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return nn.Load(r) }
