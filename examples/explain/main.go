// Explainability (paper §V-D): train a SLAP model, then measure which cut
// features the model actually relies on via permutation importance, and
// print a Fig.-5-style bar chart.
//
//	go run ./examples/explain
package main

import (
	"fmt"
	"log"
	"strings"

	"slap/internal/core"
	"slap/internal/library"
)

func main() {
	lib := library.ASAP7ish()
	slap, report, err := core.Train(core.TrainOptions{
		Library:        lib,
		MapsPerCircuit: 150,
		Epochs:         15,
		Filters:        32,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation: 10-class %.1f%%, binary keep/drop %.1f%%\n\n",
		100*report.MultiClassAccuracy, 100*report.BinaryAccuracy)

	imps := core.PermutationImportance(slap.Model, report.ValX, report.ValY, 10, 7)
	maxDrop := imps[0].MultiClassDrop
	fmt.Println("permutation feature importance (accuracy drop when the feature is shuffled):")
	for _, imp := range imps {
		bar := 0
		if maxDrop > 0 && imp.MultiClassDrop > 0 {
			bar = int(50 * imp.MultiClassDrop / maxDrop)
		}
		fmt.Printf("%-22s %7.4f |%s\n", imp.Name, imp.MultiClassDrop, strings.Repeat("#", bar))
	}
	fmt.Println("\nThe paper's observation (§V-D): no single feature dominates; leaf-level")
	fmt.Println("and polarity context matter more than the vanilla sort key (numLeaves).")
}
