// Custom library: define a small standard-cell library in the genlib-like
// text format, map a design against it, and compare with the built-in
// ASAP7-flavoured library — the workflow a downstream user follows to
// retarget the mapper to their own PDK.
//
//	go run ./examples/custom_library
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// A deliberately tiny NAND/NOR/INV-only library, as found in very
// conservative flows. All functions are expressed over pins a..e with
// ! & | ^ and parentheses; DELAY is the intrinsic pin delay in ps and
// SLOPE the extra ps per fanout.
const tinyLib = `
# name       area  function      timing
GATE inv     0.5   O=!a          DELAY 5  SLOPE 1.5
GATE nand2   0.8   O=!(a&b)      DELAY 9  SLOPE 2.0
GATE nand3   1.1   O=!(a&b&c)    DELAY 11 SLOPE 2.4
GATE nor2    0.8   O=!(a|b)      DELAY 10 SLOPE 2.4
GATE nor3    1.1   O=!(a|b|c)    DELAY 13 SLOPE 2.9
`

func main() {
	custom, err := library.Parse("nand-nor-inv", strings.NewReader(tinyLib))
	if err != nil {
		log.Fatal(err)
	}
	builtin := library.ASAP7ish()

	g := circuits.ALUCompare(16)
	fmt.Println("design:", g.Stats())
	fmt.Printf("\n%-14s %6s %10s %10s %8s\n", "library", "gates", "area µm²", "delay ps", "cells")

	for _, lib := range []*library.Library{custom, builtin} {
		res, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(1))); err != nil {
			log.Fatalf("%s: %v", lib.Name, err)
		}
		fmt.Printf("%-14s %6d %10.1f %10.1f %8d\n",
			lib.Name, len(lib.Gates), res.Area, res.Delay, res.Netlist.NumCells())
	}

	fmt.Println("\nThe NAND/NOR/INV library needs many more cells and is slower —")
	fmt.Println("rich libraries let single gates absorb whole 5-input cuts.")
}
