// Quickstart: build a circuit, map it three ways (vanilla heuristic,
// exhaustive cuts, SLAP), and compare the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

func main() {
	// 1. A subject graph: a 64-bit carry-lookahead adder built with the
	//    word-level circuit builder.
	g := circuits.CarryLookaheadAdder(64)
	fmt.Println("subject graph:", g.Stats())

	// 2. The target standard-cell library (synthetic, ASAP7-flavoured).
	lib := library.ASAP7ish()

	// 3. Map with the vanilla ABC heuristic: sort cuts by leaf count,
	//    filter dominated cuts, keep 250 per node.
	abc, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Map with exhaustive cut exploration ("Unlimited ABC").
	unl, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.UnlimitedPolicy{}})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Train a small SLAP model on random mappings of two 16-bit adders
	//    (the paper's training setup, scaled down to run in seconds), then
	//    map with ML-filtered cuts.
	slap, report, err := core.Train(core.TrainOptions{
		Library:        lib,
		MapsPerCircuit: 120,
		Epochs:         12,
		Filters:        32,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: binary keep/drop accuracy %.1f%% on %d held-out cuts\n",
		100*report.BinaryAccuracy, report.ValSamples)

	ml, err := slap.Map(g)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Every mapped netlist is verified against the subject graph.
	for _, r := range []*mapper.Result{abc, unl, ml} {
		if err := r.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(42))); err != nil {
			log.Fatalf("%s: %v", r.PolicyName, err)
		}
	}

	fmt.Printf("\n%-14s %10s %10s %12s %9s\n", "flow", "area µm²", "delay ps", "ADP", "cuts")
	for _, r := range []*mapper.Result{abc, unl, ml} {
		fmt.Printf("%-14s %10.1f %10.1f %12.0f %9d\n",
			r.PolicyName, r.Area, r.Delay, r.ADP(), r.CutsConsidered)
	}
}
