// FPGA extension: the paper argues its cut-filtering findings "can be
// extended to benefit FPGA-mapping ... as the nature of the problem is the
// same". This example maps a design to 5-input LUTs under the vanilla
// heuristic, exhaustive cuts, and the SLAP ML filter, comparing LUT count,
// depth and cut footprint.
//
//	go run ./examples/fpga_mapping
package main

import (
	"fmt"
	"log"
	"math/rand"

	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/lutmap"
)

func main() {
	g := circuits.BoothMultiplier(10)
	fmt.Println("subject graph:", g.Stats())

	// Train the cut classifier exactly as for ASIC mapping: the model is
	// technology-independent (it sees only subject-graph structure).
	slap, report, err := core.Train(core.TrainOptions{
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 120,
		Epochs:         12,
		Filters:        32,
		Seed:           2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: binary keep/drop accuracy %.1f%%\n\n", 100*report.BinaryAccuracy)

	def, err := lutmap.Map(g, lutmap.Options{Policy: cuts.DefaultPolicy{}})
	if err != nil {
		log.Fatal(err)
	}
	unl, err := lutmap.Map(g, lutmap.Options{Policy: cuts.UnlimitedPolicy{}})
	if err != nil {
		log.Fatal(err)
	}
	ml, err := slap.MapLUT(g)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	fmt.Printf("%-14s %8s %8s %10s\n", "flow", "LUTs", "depth", "cuts")
	for _, r := range []*lutmap.Result{def, unl, ml} {
		if err := r.EquivalentTo(g, 8, rng); err != nil {
			log.Fatalf("%s: %v", r.PolicyName, err)
		}
		fmt.Printf("%-14s %8d %8d %10d\n", r.PolicyName, r.NumLUTs(), r.Depth, r.CutsConsidered)
	}
	fmt.Println("\nAll three LUT networks verified equivalent to the subject graph.")
}
