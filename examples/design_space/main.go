// Design-space exploration (a miniature of the paper's Fig. 1): map one
// design many times with randomly shuffled cut lists and print the QoR
// cloud as an ASCII scatter, with the default-heuristic point marked.
//
//	go run ./examples/design_space
package main

import (
	"fmt"
	"log"
	"strings"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/experiments"
	"slap/internal/library"
)

func main() {
	p := experiments.Fast()
	p.Fig1Samples = 120

	lib := library.ASAP7ish()
	fig, err := experiments.RunFig1(p, func() *aig.AIG { return circuits.BoothMultiplier(12) }, lib,
		func(msg string) { fmt.Println(msg) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(fig.Render())
	fmt.Println()
	fmt.Println(scatter(fig, 64, 20))
}

// scatter draws the QoR cloud: '.' = one random mapping, 'o' = several,
// '*' = the default-heuristic point.
func scatter(f *experiments.Fig1, w, h int) string {
	minD, maxD, minA, maxA := f.Spread()
	if f.Default.Delay < minD {
		minD = f.Default.Delay
	}
	if f.Default.Delay > maxD {
		maxD = f.Default.Delay
	}
	if f.Default.Area < minA {
		minA = f.Default.Area
	}
	if f.Default.Area > maxA {
		maxA = f.Default.Area
	}
	cell := func(d, a float64) (int, int) {
		x := 0
		if maxD > minD {
			x = int(float64(w-1) * (d - minD) / (maxD - minD))
		}
		y := 0
		if maxA > minA {
			y = int(float64(h-1) * (a - minA) / (maxA - minA))
		}
		return x, h - 1 - y // area grows upward
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for _, pt := range f.Points {
		x, y := cell(pt.Delay, pt.Area)
		switch grid[y][x] {
		case ' ':
			grid[y][x] = '.'
		default:
			grid[y][x] = 'o'
		}
	}
	x, y := cell(f.Default.Delay, f.Default.Area)
	grid[y][x] = '*'

	var b strings.Builder
	fmt.Fprintf(&b, "area %.0f..%.0f µm² (up) vs delay %.0f..%.0f ps (right); * = ABC default\n",
		minA, maxA, minD, maxD)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", string(row))
	}
	return b.String()
}
