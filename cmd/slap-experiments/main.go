// Command slap-experiments regenerates every table and figure of the
// paper's evaluation section:
//
//	fig1      — §III  QoR scatter of random-shuffle mappings (AES)
//	accuracy  — §V-B  model accuracy (10-class and binary)
//	table2    — §V-C  ABC vs Unlimited vs SLAP on the 14 designs
//	fig5      — §V-D  permutation feature importance
//	ablation  — §III  single-attribute cut sorts are inconsistent
//	extended  — bonus: the EPFL blocks the paper skipped (div/sqrt/log2/hypot)
//
// Usage:
//
//	slap-experiments -profile fast -only all -outdir results/
//	slap-experiments -profile paper -only table2
//
// Text renderings go to stdout; CSV artefacts (for plotting) go to -outdir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"slap/internal/experiments"
	"slap/internal/library"
)

func main() {
	var (
		profileName = flag.String("profile", "fast", "parameter profile: fast or paper")
		only        = flag.String("only", "all", "experiments to run: all, fig1, accuracy, table2, fig5, ablation, extended (comma-separated)")
		outdir      = flag.String("outdir", "", "directory for CSV artefacts (empty = no CSV output)")
		seed        = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*profileName, *only, *outdir, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "slap-experiments:", err)
		os.Exit(1)
	}
}

func run(profileName, only, outdir string, seed int64) error {
	p, err := experiments.ByName(profileName)
	if err != nil {
		return err
	}
	p.Seed = seed
	want := map[string]bool{}
	for _, e := range strings.Split(only, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }
	progress := func(msg string) { fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg) }
	writeCSV := func(name, content string) error {
		if outdir == "" {
			return nil
		}
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		progress("wrote " + path)
		return nil
	}

	lib := library.ASAP7ish()

	// Fig. 1 needs no trained model.
	if sel("fig1") {
		designs := experiments.Designs(p)
		aes := designs[11] // "AES", the paper's Fig. 1 design
		fig1, err := experiments.RunFig1(p, aes.Build, lib, progress)
		if err != nil {
			return err
		}
		fmt.Println(fig1.Render())
		if err := writeCSV("fig1_"+p.Name+".csv", fig1.CSV()); err != nil {
			return err
		}
	}

	needModel := sel("accuracy") || sel("table2") || sel("fig5") || sel("extended")
	var tr *experiments.TrainOutcome
	if needModel {
		tr, err = experiments.RunTraining(p, lib, progress)
		if err != nil {
			return err
		}
	}

	if sel("accuracy") {
		fmt.Println(tr.RenderAccuracy())
	}

	if sel("table2") {
		table, err := experiments.RunTable2(p, tr.SLAP, lib, progress)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
		if err := writeCSV("table2_"+p.Name+".csv", table.CSV()); err != nil {
			return err
		}
	}

	if sel("fig5") {
		fig5 := experiments.RunFig5(p, tr, progress)
		fmt.Println(fig5.Render())
		if err := writeCSV("fig5_"+p.Name+".csv", fig5.CSV()); err != nil {
			return err
		}
	}

	if sel("extended") {
		ext, err := experiments.RunExtended(p, tr.SLAP, lib, progress)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderExtended(ext))
		if err := writeCSV("extended_"+p.Name+".csv", ext.CSV()); err != nil {
			return err
		}
	}

	if sel("ablation") {
		abl, err := experiments.RunAblation(p, lib, 6, progress)
		if err != nil {
			return err
		}
		fmt.Println(abl.Render())
	}
	return nil
}
