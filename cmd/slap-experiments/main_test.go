package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAblationOnly(t *testing.T) {
	// The ablation needs no trained model, so it is the cheapest selector
	// that exercises the dispatch loop end to end.
	if err := run("fast", "ablation", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	if err := run("bogus", "all", "", 1); err == nil {
		t.Fatalf("bad profile accepted")
	}
}

func TestRunUnknownSelectorIsNoop(t *testing.T) {
	// Unknown experiment names simply select nothing.
	if err := run("fast", "nonesuch", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	// fig1 under the tiny profile needs no trained model and writes its
	// scatter as CSV.
	if err := run("tiny", "fig1", dir, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1_tiny.csv"))
	if err != nil {
		t.Fatalf("fig1 CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "delay_ps,area_um2,kind") {
		t.Fatalf("fig1 CSV malformed:\n%s", data)
	}
}
