package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/library"
)

func TestRunDefaultPolicy(t *testing.T) {
	if err := run(runConfig{circuit: "rc64b", profile: "fast", policy: "default", seed: 1, verify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShuffleAndCells(t *testing.T) {
	if err := run(runConfig{circuit: "bar", profile: "fast", policy: "shuffle", seed: 7, limit: 8, verify: true, cells: true}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStreaming drives the default fused-pipeline path (the -streaming
// flag is on unless disabled) with equivalence checking for every policy.
func TestRunStreaming(t *testing.T) {
	for _, policy := range []string{"default", "shuffle", "unlimited"} {
		if err := run(runConfig{circuit: "rc64b", profile: "fast", policy: policy, seed: 3, streaming: true, verify: true}); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run(runConfig{profile: "fast", policy: "default", seed: 1, list: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAAGInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.aag")
	g := circuits.TrainRC16()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteAAG(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(runConfig{aag: path, profile: "fast", policy: "unlimited", seed: 1, verify: true}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStdinInput maps a circuit piped to -aag "-": the stdin decode
// path shared with the slap-serve front end, format auto-detected.
func TestRunStdinInput(t *testing.T) {
	var buf bytes.Buffer
	if err := circuits.TrainRC16().WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{aag: "-", stdin: &buf, profile: "fast", policy: "unlimited", seed: 1, verify: true}); err != nil {
		t.Fatal(err)
	}
	// BLIF on stdin sniffs too.
	blif := ".model tiny\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n"
	if err := run(runConfig{aag: "-", stdin: strings.NewReader(blif), profile: "fast", policy: "default", seed: 1, verify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSLAPPolicy(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	s, _, err := core.Train(core.TrainOptions{
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 20,
		Epochs:         2,
		Filters:        8,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Model.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{circuit: "rc64b", profile: "fast", policy: "slap", model: modelPath, seed: 1, verify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomLibrary(t *testing.T) {
	dir := t.TempDir()
	libPath := filepath.Join(dir, "lib.txt")
	text := "GATE inv 1 O=!a DELAY 5 SLOPE 1\nGATE nand2 1.5 O=!(a&b) DELAY 9 SLOPE 2\n"
	if err := os.WriteFile(libPath, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{circuit: "rc64b", profile: "fast", policy: "default", lib: libPath, seed: 1, verify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"unknown profile", func() error {
			return run(runConfig{circuit: "rc64b", profile: "bogus", policy: "default", seed: 1})
		}},
		{"unknown circuit", func() error {
			return run(runConfig{circuit: "nonesuch", profile: "fast", policy: "default", seed: 1})
		}},
		{"unknown policy", func() error {
			return run(runConfig{circuit: "rc64b", profile: "fast", policy: "bogus", seed: 1})
		}},
		{"slap without model", func() error {
			return run(runConfig{circuit: "rc64b", profile: "fast", policy: "slap", seed: 1})
		}},
		{"missing aag", func() error {
			return run(runConfig{aag: "/nonexistent.aag", profile: "fast", policy: "default", seed: 1})
		}},
		{"missing circuit and aag", func() error {
			return run(runConfig{profile: "fast", policy: "default", seed: 1})
		}},
		{"missing library file", func() error {
			return run(runConfig{circuit: "rc64b", profile: "fast", policy: "default", lib: "/nonexistent.lib", seed: 1})
		}},
	}
	for _, c := range cases {
		if err := c.f(); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if strings.Contains(err.Error(), "EQUIVALENCE") {
			t.Errorf("%s: unexpected equivalence failure: %v", c.name, err)
		}
	}
}

func TestRunWritesNetlistFiles(t *testing.T) {
	dir := t.TempDir()
	v := filepath.Join(dir, "out.v")
	b := filepath.Join(dir, "out.blif")
	err := run(runConfig{
		circuit: "rc64b", profile: "fast", policy: "default", seed: 1,
		verify: true, verilog: v, blif: b, report: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vd, err := os.ReadFile(v)
	if err != nil || !strings.Contains(string(vd), "module") {
		t.Fatalf("verilog output missing: %v", err)
	}
	bd, err := os.ReadFile(b)
	if err != nil || !strings.Contains(string(bd), ".model") {
		t.Fatalf("blif output missing: %v", err)
	}
}
