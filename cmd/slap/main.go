// Command slap maps a circuit onto the standard-cell library under a chosen
// cut policy and prints the resulting QoR.
//
// Usage:
//
//	slap -circuit adder -policy default
//	slap -circuit AES -policy slap -model model.gob
//	slap -aag design.aag -policy unlimited -verify
//	slap -aag edited.aag -baseline original.aag -policy default
//	slap -circuit adder -policy slap -model model.gob -rounds 4 -choices
//
// Circuits are either built-in Table II generators (-circuit, sized by
// -profile) or ASCII AIGER files (-aag). Policies: default (vanilla ABC
// heuristic), unlimited (all cuts), shuffle (random, -seed), slap (ML
// filtering, requires -model).
//
// -rounds N runs the multi-round engine: round 1 is the classic
// delay-optimal pass, later rounds re-select the cover by area flow under
// required times frozen from the round-1 delay (scaled by -delay-factor),
// and the final round adds an exact-area refinement. -choices additionally
// maps over a structural-choice view, so Boolean matching sees the union of
// each node's rewrite variants.
//
// -baseline runs an offline ECO: the baseline circuit is mapped first
// (capturing a cut snapshot), then the subject graph is delta-remapped
// against it — only the edited cone's cuts are re-enumerated (and, for
// slap, re-classified) while the result stays byte-identical to a cold map.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"slap/internal/aig"
	"slap/internal/choice"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/experiments"
	"slap/internal/infer"
	"slap/internal/library"
	"slap/internal/mapper"
	"slap/internal/nn"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name (Table II row, e.g. adder, bar, AES)")
		aagPath     = flag.String("aag", "", "map an ASCII AIGER (.aag) or BLIF (.blif) file instead of a built-in circuit; \"-\" reads from stdin (format auto-detected)")
		baseline    = flag.String("baseline", "", "offline ECO: map this circuit file first, then delta-remap the subject against it (policies default, unlimited, slap)")
		profileName = flag.String("profile", "fast", "design size profile: fast or paper")
		policyName  = flag.String("policy", "default", "cut policy: default, unlimited, shuffle, slap")
		modelPath   = flag.String("model", "", "trained model file (required for -policy slap)")
		libPath     = flag.String("lib", "", "genlib-like library file (default: built-in asap7ish)")
		seed        = flag.Int64("seed", 1, "seed for the shuffle policy")
		limit       = flag.Int("limit", 0, "per-node cut budget for default/shuffle policies (0 = 250)")
		workers     = flag.Int("workers", 0, "cut-enumeration/inference workers (0 = all CPU cores, 1 = sequential)")
		batch       = flag.Int("batch", 256, "batched-inference flush size for -policy slap (negative = per-sample inference)")
		batchWait   = flag.Duration("batch-wait", time.Millisecond, "max wait for an inference batch to fill before flushing")
		streaming   = flag.Bool("streaming", true, "fused streaming pipeline: match cuts inside the enumeration wavefront and retire their storage level by level (false = two-phase enumerate-then-match)")
		verify      = flag.Bool("verify", true, "check mapped netlist equivalence against the AIG")
		listNames   = flag.Bool("list", false, "list built-in circuit names and exit")
		showCells   = flag.Bool("cells", false, "print the cell-type histogram")
		verilogOut  = flag.String("verilog", "", "write the mapped netlist as structural Verilog to this file")
		blifOut     = flag.String("blif", "", "write the mapped netlist as BLIF to this file")
		report      = flag.Bool("report", false, "print the critical-path timing report")
		rounds      = flag.Int("rounds", 1, "selection rounds: 1 = classic single pass, N > 1 adds area-recovery rounds under the round-1 delay (exact-area last)")
		delayFactor = flag.Float64("delay-factor", 1.0, "required-time slack for recovery rounds, as a multiple of the round-1 delay (<= 1 pins the round-1 optimum)")
		choices     = flag.Bool("choices", false, "map over a structural-choice view: matching sees the union of each node's rewrite variants")

		choiceWorkers = flag.Int("choice-workers", 0, "parallel choice-view proving workers (0 = all CPU cores; the built view is identical for any value)")
		choiceBudget  = flag.Int64("choice-budget", 0, "per-pair SAT conflict budget for choice-view proofs (0 = default)")
	)
	flag.Parse()

	if err := run(runConfig{
		circuit: *circuitName, aag: *aagPath, baseline: *baseline, profile: *profileName,
		policy: *policyName, model: *modelPath, lib: *libPath,
		seed: *seed, limit: *limit, workers: *workers, batch: *batch, batchWait: *batchWait,
		streaming: *streaming, verify: *verify, list: *listNames,
		cells: *showCells, verilog: *verilogOut, blif: *blifOut, report: *report,
		rounds: *rounds, delayFactor: *delayFactor, choices: *choices,
		choiceWorkers: *choiceWorkers, choiceBudget: *choiceBudget,
		stdin: os.Stdin,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "slap:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command-line options.
type runConfig struct {
	circuit, aag, baseline, profile, policy, model, lib string
	seed                                                int64
	limit, workers, batch                               int
	batchWait                                           time.Duration
	streaming                                           bool
	verify, list, cells, report                         bool
	verilog, blif                                       string
	rounds                                              int
	delayFactor                                         float64
	choices                                             bool
	choiceWorkers                                       int
	choiceBudget                                        int64
	// stdin backs -aag "-"; nil falls back to os.Stdin.
	stdin io.Reader
}

// choiceOptions folds the -choice-* flags into the view-construction
// options (zero values keep the choice package defaults).
func (cfg runConfig) choiceOptions() choice.Options {
	return choice.Options{Workers: cfg.choiceWorkers, ProofConflicts: cfg.choiceBudget}
}

func run(cfg runConfig) error {
	circuitName, aagPath, policyName := cfg.circuit, cfg.aag, cfg.policy
	modelPath, libPath := cfg.model, cfg.lib
	seed, limit := cfg.seed, cfg.limit
	listNames := cfg.list
	profile, err := experiments.ByName(cfg.profile)
	if err != nil {
		return err
	}
	if listNames {
		for _, d := range experiments.Designs(profile) {
			fmt.Println(d.Name)
		}
		return nil
	}

	lib, err := loadLibrary(libPath)
	if err != nil {
		return err
	}
	g, err := loadCircuit(circuitName, aagPath, profile, cfg.stdin)
	if err != nil {
		return err
	}
	fmt.Printf("circuit: %s\n", g.Stats())

	// The fused streaming pipeline and the two-phase flow produce
	// byte-identical results; streaming only changes peak memory, so it is
	// safe as the default.
	mapASIC := mapper.Map
	if cfg.streaming {
		mapASIC = mapper.MapStream
	}

	var res *mapper.Result
	if cfg.baseline != "" {
		if cfg.rounds > 1 || cfg.choices {
			return fmt.Errorf("-baseline delta-remaps against a single-round snapshot; it is incompatible with -rounds > 1 and -choices")
		}
		res, err = runECO(cfg, g, lib)
		if err != nil {
			return err
		}
		return printResult(cfg, g, res)
	}
	// -choices maps a combined choice view instead of the subject graph; the
	// view shares the subject's PIs/POs, so verification below still runs
	// against the original circuit.
	mg := g
	var chSrc cuts.ChoiceSource
	if cfg.choices {
		v := choice.Build(g, cfg.choiceOptions())
		mg, chSrc = v.G, v
	}
	opt := mapper.Options{
		Library: lib, Workers: cfg.workers,
		Rounds: cfg.rounds, DelayFactor: cfg.delayFactor, Choices: chSrc,
	}
	switch policyName {
	case "default":
		opt.Policy = cuts.DefaultPolicy{Limit: limit}
		res, err = mapASIC(mg, opt)
	case "unlimited":
		opt.Policy = cuts.UnlimitedPolicy{}
		res, err = mapASIC(mg, opt)
	case "shuffle":
		opt.Policy = &cuts.ShufflePolicy{
			Rng:   rand.New(rand.NewSource(seed)),
			Limit: limit,
		}
		res, err = mapASIC(mg, opt)
	case "slap":
		if modelPath == "" {
			return fmt.Errorf("-policy slap requires -model (train one with slap-train)")
		}
		var model *nn.Model
		model, err = nn.LoadFile(modelPath)
		if err != nil {
			return err
		}
		s := core.New(model, lib)
		s.Workers = cfg.workers
		s.Rounds = cfg.rounds
		s.DelayFactor = cfg.delayFactor
		s.Choices = cfg.choices
		s.ChoiceOpts = cfg.choiceOptions()
		if cfg.batch >= 0 {
			// All mapping workers funnel through one coalescer, so a node's
			// cuts merge with other nodes' into shared GEMM passes. The
			// kernels keep per-sample accumulation order: QoR is identical
			// to per-sample inference.
			co := infer.NewCoalescer(infer.NewEngine(model, infer.Options{}), infer.CoalescerOptions{
				MaxBatch: cfg.batch,
				MaxWait:  cfg.batchWait,
			})
			defer co.Close()
			s.Batch = co
		}
		if cfg.streaming {
			res, err = s.MapStream(g)
		} else {
			res, err = s.Map(g)
		}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	if err != nil {
		return err
	}
	return printResult(cfg, g, res)
}

// printResult renders the QoR block shared by the cold-map and ECO flows.
func printResult(cfg runConfig, g *aig.AIG, res *mapper.Result) error {
	fmt.Printf("policy:  %s\n", res.PolicyName)
	fmt.Printf("area:    %.2f µm²\n", res.Area)
	fmt.Printf("delay:   %.2f ps\n", res.Delay)
	fmt.Printf("ADP:     %.1f\n", res.ADP())
	fmt.Printf("cells:   %d\n", res.Netlist.NumCells())
	fmt.Printf("cuts:    %d considered (peak %d live), %d match attempts\n", res.CutsConsidered, res.PeakCuts, res.MatchAttempts)
	for _, st := range res.RoundStats {
		fmt.Printf("round %d: %-15s est area %.2f, est delay %.2f (%d cuts, %d match attempts)\n",
			st.Round, st.Mode, st.EstArea, st.EstDelay, st.CutsConsidered, st.MatchAttempts)
	}
	if cfg.cells {
		for name, n := range res.Netlist.CellCounts() {
			fmt.Printf("  %-10s %d\n", name, n)
		}
	}
	if cfg.verify {
		if err := res.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(99))); err != nil {
			return fmt.Errorf("EQUIVALENCE FAILED: %w", err)
		}
		fmt.Println("verify:  netlist equivalent to subject graph (512 random patterns)")
	}
	if cfg.report {
		fmt.Print(res.Netlist.TimingReport(res.Netlist.STA()))
	}
	if cfg.verilog != "" {
		if err := writeNetlistFile(cfg.verilog, res.Netlist.WriteVerilog); err != nil {
			return err
		}
		fmt.Printf("wrote Verilog to %s\n", cfg.verilog)
	}
	if cfg.blif != "" {
		if err := writeNetlistFile(cfg.blif, res.Netlist.WriteBLIF); err != nil {
			return err
		}
		fmt.Printf("wrote BLIF to %s\n", cfg.blif)
	}
	return nil
}

// runECO is the -baseline flow: map the baseline circuit with snapshot
// capture, then delta-remap the subject graph against it. Only the dirty
// cone re-runs enumeration policy (and, for slap, CNN classification); the
// returned result is byte-identical to a cold map of the subject.
func runECO(cfg runConfig, g *aig.AIG, lib *library.Library) (*mapper.Result, error) {
	bf, err := os.Open(cfg.baseline)
	if err != nil {
		return nil, err
	}
	base, derr := aig.Decode(aig.FormatForPath(cfg.baseline), bf)
	bf.Close()
	if derr != nil {
		return nil, fmt.Errorf("loading -baseline: %w", derr)
	}
	fmt.Printf("baseline: %s\n", base.Stats())

	switch cfg.policy {
	case "default", "unlimited":
		var p cuts.Policy = cuts.DefaultPolicy{Limit: cfg.limit}
		if cfg.policy == "unlimited" {
			p = cuts.UnlimitedPolicy{}
		}
		opt := mapper.Options{Library: lib, Policy: p, Workers: cfg.workers}
		snap := mapper.NewSnapshot(base, opt)
		capOpt := opt
		capOpt.CaptureCuts = snap.Capture
		mapASIC := mapper.Map
		if cfg.streaming {
			mapASIC = mapper.MapStream
		}
		t0 := time.Now()
		if _, err := mapASIC(base, capOpt); err != nil {
			return nil, fmt.Errorf("mapping baseline: %w", err)
		}
		baseD := time.Since(t0)
		t1 := time.Now()
		res, st, err := mapper.MapDelta(g, opt, snap)
		if err != nil {
			return nil, fmt.Errorf("delta remap: %w", err)
		}
		printDelta(st, baseD, time.Since(t1))
		return res, nil
	case "slap":
		if cfg.model == "" {
			return nil, fmt.Errorf("-policy slap requires -model (train one with slap-train)")
		}
		model, err := nn.LoadFile(cfg.model)
		if err != nil {
			return nil, err
		}
		s := core.New(model, lib)
		s.Workers = cfg.workers
		if cfg.batch >= 0 {
			co := infer.NewCoalescer(infer.NewEngine(model, infer.Options{}), infer.CoalescerOptions{
				MaxBatch: cfg.batch,
				MaxWait:  cfg.batchWait,
			})
			defer co.Close()
			s.Batch = co
		}
		ctx := context.Background()
		capture := s.MapCaptureContext
		if cfg.streaming {
			capture = s.MapStreamCaptureContext
		}
		t0 := time.Now()
		_, snap, err := capture(ctx, base)
		if err != nil {
			return nil, fmt.Errorf("mapping baseline: %w", err)
		}
		baseD := time.Since(t0)
		t1 := time.Now()
		res, _, st, err := s.MapDeltaContext(ctx, g, snap)
		if err != nil {
			return nil, fmt.Errorf("delta remap: %w", err)
		}
		printDelta(st, baseD, time.Since(t1))
		return res, nil
	default:
		return nil, fmt.Errorf("policy %q is not ECO-eligible (want default, unlimited or slap)", cfg.policy)
	}
}

// printDelta summarises how much of the baseline's work the delta reused.
func printDelta(st *mapper.DeltaStats, baseD, deltaD time.Duration) {
	fmt.Printf("eco:     baseline mapped in %s, delta remap in %s\n",
		baseD.Round(time.Millisecond), deltaD.Round(time.Millisecond))
	fmt.Printf("         dirty %d/%d ANDs (%.1f%%), %d cuts reused\n",
		st.DirtyAnds, st.TotalAnds, 100*st.DirtyFraction, st.ReusedCuts)
}

func writeNetlistFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

func loadLibrary(path string) (*library.Library, error) {
	if path == "" {
		return library.ASAP7ish(), nil
	}
	return library.LoadFile(path)
}

// loadCircuit resolves the subject graph: a built-in generator, a circuit
// file, or stdin via "-" — the same aig.Decode path the slap-serve front
// end uses on request bodies.
func loadCircuit(name, aagPath string, p experiments.Profile, stdin io.Reader) (*aig.AIG, error) {
	if aagPath == "-" {
		if stdin == nil {
			stdin = os.Stdin
		}
		return aig.Decode(aig.FormatAuto, stdin)
	}
	if aagPath != "" {
		f, err := os.Open(aagPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return aig.Decode(aig.FormatForPath(aagPath), f)
	}
	if name == "" {
		return nil, fmt.Errorf("need -circuit or -aag (use -list for built-in names)")
	}
	for _, d := range experiments.Designs(p) {
		if d.Name == name {
			return d.Build(), nil
		}
	}
	return nil, fmt.Errorf("unknown circuit %q (use -list)", name)
}
