package main

import (
	"path/filepath"
	"testing"

	"slap/internal/nn"
)

func TestRunTrainsAndSaves(t *testing.T) {
	out := filepath.Join(t.TempDir(), "model.gob")
	if err := run("fast", 15, 2, 8, 1, out, true); err != nil {
		t.Fatal(err)
	}
	m, err := nn.LoadFile(out)
	if err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
	if m.Filters != 8 {
		t.Fatalf("saved model has %d filters, want 8", m.Filters)
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	if err := run("bogus", 0, 0, 0, 1, "x.gob", true); err == nil {
		t.Fatalf("bad profile accepted")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run("fast", 10, 1, 8, 1, "/nonexistent-dir/model.gob", true); err == nil {
		t.Fatalf("unwritable output accepted")
	}
}
