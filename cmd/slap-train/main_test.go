package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"slap/internal/nn"
)

func TestRunTrainsAndSaves(t *testing.T) {
	out := filepath.Join(t.TempDir(), "model.gob")
	opt := options{Profile: "fast", Maps: 15, Epochs: 2, Filters: 8, Seed: 1, Out: out, Quiet: true}
	if err := run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	m, err := nn.LoadFile(out)
	if err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
	if m.Filters != 8 {
		t.Fatalf("saved model has %d filters, want 8", m.Filters)
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	opt := options{Profile: "bogus", Seed: 1, Out: "x.gob", Quiet: true}
	if err := run(context.Background(), opt); err == nil {
		t.Fatalf("bad profile accepted")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	opt := options{Profile: "fast", Maps: 10, Epochs: 1, Filters: 8, Seed: 1,
		Out: "/nonexistent-dir/model.gob", Quiet: true}
	if err := run(context.Background(), opt); err == nil {
		t.Fatalf("unwritable output accepted")
	}
}

// TestRunShardedAndResume trains once through the sharded generation path,
// then re-runs with -resume: the second run must reuse every checkpointed
// shard (no regeneration) and produce a loadable model.
func TestRunShardedAndResume(t *testing.T) {
	dir := t.TempDir()
	sweep := filepath.Join(dir, "sweep")
	out := filepath.Join(dir, "model.gob")
	opt := options{
		Profile: "fast", Maps: 8, Epochs: 1, Filters: 8, Seed: 1,
		Out: out, Quiet: true, Shards: 3, OutDir: sweep,
	}
	if err := run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.LoadFile(out); err != nil {
		t.Fatalf("sharded run produced unreadable model: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sweep, "manifest.jsonl")); err != nil {
		t.Fatalf("sharded run left no manifest: %v", err)
	}

	// Resume with everything already done: shards are reused, training
	// still succeeds, and the model is rewritten.
	opt.Resume = true
	opt.Out = filepath.Join(dir, "model2.gob")
	if err := run(context.Background(), opt); err != nil {
		t.Fatalf("resume over a complete sweep: %v", err)
	}
	if _, err := nn.LoadFile(opt.Out); err != nil {
		t.Fatalf("resumed run produced unreadable model: %v", err)
	}
}

func TestRunShardedRequiresOutDir(t *testing.T) {
	opt := options{Profile: "fast", Maps: 8, Epochs: 1, Filters: 8, Seed: 1,
		Out: "x.gob", Quiet: true, Shards: 2}
	if err := run(context.Background(), opt); err == nil {
		t.Fatal("-shards without -out-dir accepted")
	}
}
