// Command slap-train generates random-mapping training data from the two
// 16-bit adder architectures, trains the SLAP cut classifier, reports its
// accuracy (paper §V-B) and saves the model.
//
// Usage:
//
//	slap-train -profile fast -o model.gob
//	slap-train -maps 1250 -epochs 50 -filters 128 -o model.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"slap/internal/core"
	"slap/internal/experiments"
	"slap/internal/library"
)

func main() {
	var (
		profileName = flag.String("profile", "fast", "parameter profile: fast or paper")
		maps        = flag.Int("maps", 0, "random mappings per training circuit (0 = profile value)")
		epochs      = flag.Int("epochs", 0, "training epochs (0 = profile value)")
		filters     = flag.Int("filters", 0, "convolution filters (0 = profile value)")
		seed        = flag.Int64("seed", 1, "random seed")
		out         = flag.String("o", "model.gob", "output model file")
		quiet       = flag.Bool("q", false, "suppress per-epoch progress")
	)
	flag.Parse()

	if err := run(*profileName, *maps, *epochs, *filters, *seed, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "slap-train:", err)
		os.Exit(1)
	}
}

func run(profileName string, maps, epochs, filters int, seed int64, out string, quiet bool) error {
	p, err := experiments.ByName(profileName)
	if err != nil {
		return err
	}
	if maps != 0 {
		p.TrainMaps = maps
	}
	if epochs != 0 {
		p.TrainEpochs = epochs
	}
	if filters != 0 {
		p.Filters = filters
	}
	p.Seed = seed

	lib := library.ASAP7ish()
	fmt.Printf("generating %d random mappings per circuit (rc16 + cla16)...\n", p.TrainMaps)
	s, rep, err := core.Train(core.TrainOptions{
		Library:        lib,
		MapsPerCircuit: p.TrainMaps,
		Epochs:         p.TrainEpochs,
		Filters:        p.Filters,
		Seed:           p.Seed,
		Verbose:        !quiet,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\ndataset: %d samples (%d train / %d val), classes %v\n",
		rep.Samples, rep.TrainSamples, rep.ValSamples, rep.ClassHistogram)
	fmt.Printf("10-class validation accuracy: %.1f%%  (paper: ~34%%)\n", 100*rep.MultiClassAccuracy)
	fmt.Printf("binary keep/drop accuracy:    %.1f%%  (paper: 93.4%%)\n", 100*rep.BinaryAccuracy)
	fmt.Printf("model: %d parameters\n", s.Model.NumParams())

	if err := s.Model.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("saved model to %s\n", out)
	return nil
}
