// Command slap-train generates random-mapping training data from the two
// 16-bit adder architectures, trains the SLAP cut classifier, reports its
// accuracy (paper §V-B) and saves the model.
//
// Usage:
//
//	slap-train -profile fast -o model.gob
//	slap-train -maps 1250 -epochs 50 -filters 128 -o model.gob
//
// Long sweeps can run sharded and resumably: -shards splits the sweep
// into checkpointed shard files under -out-dir, and -resume picks a
// killed run back up, re-running only missing or corrupt shards. The
// merged dataset is byte-identical to the single-process sweep with the
// same seed.
//
//	slap-train -profile paper -shards 16 -out-dir sweep/ -o model.gob
//	slap-train -profile paper -shards 16 -out-dir sweep/ -resume -o model.gob
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/dataset"
	"slap/internal/experiments"
	"slap/internal/genjob"
	"slap/internal/library"
)

func main() {
	var opt options
	flag.StringVar(&opt.Profile, "profile", "fast", "parameter profile: fast or paper")
	flag.IntVar(&opt.Maps, "maps", 0, "random mappings per training circuit (0 = profile value)")
	flag.IntVar(&opt.Epochs, "epochs", 0, "training epochs (0 = profile value)")
	flag.IntVar(&opt.Filters, "filters", 0, "convolution filters (0 = profile value)")
	flag.Int64Var(&opt.Seed, "seed", 1, "random seed")
	flag.StringVar(&opt.Out, "o", "model.gob", "output model file")
	flag.BoolVar(&opt.Quiet, "q", false, "suppress per-epoch progress")
	flag.IntVar(&opt.Shards, "shards", 0, "split data generation into N checkpointed shards (0 = single-process)")
	flag.StringVar(&opt.OutDir, "out-dir", "", "shard checkpoint directory (required with -shards)")
	flag.BoolVar(&opt.Resume, "resume", false, "resume a previous sharded run from its manifest")
	flag.IntVar(&opt.FailureBudget, "failure-budget", 0, "shards allowed to fail permanently before the run aborts")
	flag.IntVar(&opt.MaxAttempts, "max-attempts", 0, "attempts per shard before it counts as failed (0 = 3)")
	flag.IntVar(&opt.MapFailures, "map-failures", 0, "individual mappings allowed to fail across the sweep")
	flag.StringVar(&opt.DatasetOut, "dataset-out", "", "also save the generated dataset (gob) to this file — the reference for byte-comparing fleet sweeps")
	flag.BoolVar(&opt.DatasetOnly, "dataset-only", false, "stop after dataset generation (skip training); useful with -dataset-out")
	flag.Parse()

	// SIGINT/SIGTERM cancel the sweep cleanly: in-flight shards stop, the
	// manifest keeps every completed shard, and -resume continues later.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if err := run(ctx, opt); err != nil {
		fmt.Fprintln(os.Stderr, "slap-train:", err)
		os.Exit(1)
	}
}

// options carries the CLI configuration; tests call run directly with it.
type options struct {
	Profile       string
	Maps          int
	Epochs        int
	Filters       int
	Seed          int64
	Out           string
	Quiet         bool
	Shards        int
	OutDir        string
	Resume        bool
	FailureBudget int
	MaxAttempts   int
	MapFailures   int
	DatasetOut    string
	DatasetOnly   bool
}

func run(ctx context.Context, opt options) error {
	p, err := experiments.ByName(opt.Profile)
	if err != nil {
		return err
	}
	if opt.Maps != 0 {
		p.TrainMaps = opt.Maps
	}
	if opt.Epochs != 0 {
		p.TrainEpochs = opt.Epochs
	}
	if opt.Filters != 0 {
		p.Filters = opt.Filters
	}
	p.Seed = opt.Seed

	lib := library.ASAP7ish()
	var ds *dataset.Dataset
	if opt.Shards > 0 {
		ds, err = runSharded(ctx, opt, p.TrainMaps, lib)
		if err != nil {
			return err
		}
	} else {
		fmt.Printf("generating %d random mappings per circuit (rc16 + cla16)...\n", p.TrainMaps)
		if opt.DatasetOut != "" || opt.DatasetOnly {
			// Generate explicitly (instead of inside core.Train) so the
			// sweep can be saved; same config shape a fleet sweep resolves
			// to, so the files byte-compare.
			ds, err = dataset.Generate(dataset.Config{
				Circuits:       []*aig.AIG{circuits.TrainRC16(), circuits.TrainCLA16()},
				Library:        lib,
				MapsPerCircuit: p.TrainMaps,
				Seed:           p.Seed,
				MaxFailures:    opt.MapFailures,
			})
			if err != nil {
				return err
			}
		}
	}

	if opt.DatasetOut != "" {
		if err := ds.SaveFile(opt.DatasetOut); err != nil {
			return err
		}
		fmt.Printf("saved dataset to %s (%d samples)\n", opt.DatasetOut, ds.Len())
	}
	if opt.DatasetOnly {
		return nil
	}

	s, rep, err := core.Train(core.TrainOptions{
		Library:        lib,
		MapsPerCircuit: p.TrainMaps,
		Epochs:         p.TrainEpochs,
		Filters:        p.Filters,
		Seed:           p.Seed,
		Dataset:        ds,
		Verbose:        !opt.Quiet,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\ndataset: %d samples (%d train / %d val), classes %v\n",
		rep.Samples, rep.TrainSamples, rep.ValSamples, rep.ClassHistogram)
	fmt.Printf("10-class validation accuracy: %.1f%%  (paper: ~34%%)\n", 100*rep.MultiClassAccuracy)
	fmt.Printf("binary keep/drop accuracy:    %.1f%%  (paper: 93.4%%)\n", 100*rep.BinaryAccuracy)
	fmt.Printf("model: %d parameters\n", s.Model.NumParams())

	if err := s.Model.SaveFile(opt.Out); err != nil {
		return err
	}
	fmt.Printf("saved model to %s\n", opt.Out)
	return nil
}

// runSharded generates the training sweep through genjob: checkpointed
// shard files, per-shard retry with backoff, and manifest-driven resume.
func runSharded(ctx context.Context, opt options, maps int, lib *library.Library) (*dataset.Dataset, error) {
	if opt.OutDir == "" {
		return nil, fmt.Errorf("-shards requires -out-dir")
	}
	mode := "starting"
	if opt.Resume {
		mode = "resuming"
	}
	fmt.Printf("%s sharded sweep: %d mappings per circuit over %d shards in %s\n",
		mode, maps, opt.Shards, opt.OutDir)

	cfg := genjob.Config{
		Dataset: dataset.Config{
			Circuits:       []*aig.AIG{circuits.TrainRC16(), circuits.TrainCLA16()},
			Library:        lib,
			MapsPerCircuit: maps,
			Seed:           opt.Seed,
			MaxFailures:    opt.MapFailures,
		},
		OutDir:        opt.OutDir,
		Shards:        opt.Shards,
		Resume:        opt.Resume,
		MaxAttempts:   opt.MaxAttempts,
		FailureBudget: opt.FailureBudget,
	}
	if !opt.Quiet {
		cfg.Progress = func(e genjob.Event) { fmt.Println("  " + e.String()) }
	}
	ds, rep, err := genjob.Run(ctx, cfg)
	if err != nil {
		if rep != nil && len(rep.FailedShards) > 0 {
			return nil, fmt.Errorf("%w (failed shards: %v; completed shards are checkpointed, re-run with -resume)",
				err, rep.FailedShards)
		}
		return nil, fmt.Errorf("%w (completed shards are checkpointed, re-run with -resume)", err)
	}
	fmt.Printf("sweep done: %d shards (%d reused, %d executed, %d retries, %d corrupt re-run), %d samples\n",
		rep.Shards, rep.Reused, rep.Executed, rep.Retries, rep.Corrupt, rep.Samples)
	if rep.SkippedMaps > 0 {
		fmt.Printf("warning: %d mappings skipped within the failure budget\n", rep.SkippedMaps)
	}
	return ds, nil
}
