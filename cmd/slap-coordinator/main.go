// Command slap-coordinator fronts a fleet of slap-serve workers: it routes
// POST /v1/map and /v1/classify by consistent hashing on the design's
// structural hash — so resubmissions and ECO edits land on the worker
// whose cut arenas and result cache are already warm — probes worker
// health, retries dead workers on the next ring replica, sheds load with
// 503 when every live worker is at its in-flight cap, and fans dataset
// sweeps out as checksummed shards merged centrally, byte-identical to a
// single-process run.
//
// Usage:
//
//	slap-coordinator -addr :8350 -worker a=http://10.0.0.5:8351 -worker b=http://10.0.0.6:8351
//	slap-coordinator -addr :8350            # empty fleet; workers join with slap-serve -coordinator
//	curl --data-binary @design.aag 'localhost:8350/v1/map?policy=default'
//	curl localhost:8350/healthz ; curl localhost:8350/metrics
//
// Endpoints: POST /v1/map, POST /v1/classify (proxied with affinity),
// POST /v1/workers/register, DELETE /v1/workers/{name}, GET /v1/workers,
// POST /v1/jobs/dataset (202 + id), GET /v1/jobs/{id}, GET /healthz,
// GET /metrics.
//
// With -journal set, membership changes and dataset jobs are logged to an
// append-only checksummed file; a coordinator killed mid-sweep and
// restarted with the same -journal re-adopts its self-registered workers
// and resumes the sweep where it left off, producing a byte-identical
// dataset. Per-worker circuit breakers (-breaker-threshold,
// -breaker-cooldown) trip on consecutive request failures, and hedged
// reads race a second replica when the hash-affine worker is saturated or
// breaker-open.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slap/internal/fleet"
)

// workerFlags collects repeatable -worker flags of the form "name=url" or
// bare "url" (name derived from host:port).
type workerFlags []fleet.StaticWorker

func (w *workerFlags) String() string { return fmt.Sprint(*w) }

func (w *workerFlags) Set(v string) error {
	name, u := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, u = v[:i], v[i+1:]
	}
	if u == "" {
		return fmt.Errorf("empty URL in %q (want name=url or url)", v)
	}
	*w = append(*w, fleet.StaticWorker{Name: name, URL: u})
	return nil
}

func main() {
	var (
		workers workerFlags

		addr          = flag.String("addr", ":8350", "listen address")
		vnodes        = flag.Int("vnodes", fleet.DefaultVNodes, "virtual nodes per worker on the consistent-hash ring")
		probeInterval = flag.Duration("probe-interval", fleet.DefaultProbeInterval, "worker /healthz probe cadence")
		probeTimeout  = flag.Duration("probe-timeout", fleet.DefaultProbeTimeout, "per-probe timeout")
		deadAfter     = flag.Int("dead-after", fleet.DefaultDeadAfter, "consecutive probe/proxy failures before a worker is declared dead")
		attempts      = flag.Int("attempts", fleet.DefaultMaxAttempts, "workers one request may be tried on before answering 502")
		inflight      = flag.Int64("inflight", fleet.DefaultInflightPerWorker, "in-flight request cap per worker; a saturated fleet sheds with 503 (negative = uncapped)")
		maxBody       = flag.Int64("max-body", fleet.DefaultMaxBodyBytes, "request body size limit in bytes")
		jobsDir       = flag.String("jobs-dir", "", "directory for fleet dataset-job shard files (default: under the system temp dir)")
		shardConc     = flag.Int("shard-concurrency", 0, "concurrently outstanding dataset shards per job (0 = 2x worker count)")
		drainWait     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		journal       = flag.String("journal", "", "append-only journal file for crash-safe membership and dataset jobs; restarting with the same path replays it and resumes half-finished sweeps")
		reqTimeout    = flag.Duration("request-timeout", 0, "server-side ceiling for one proxied request including retries and hedges; clients lower it per request with ?timeout_ms= (0 = no ceiling)")
		brkThreshold  = flag.Int("breaker-threshold", fleet.DefaultBreakerThreshold, "consecutive request failures that trip a worker's circuit breaker open")
		brkCooldown   = flag.Duration("breaker-cooldown", fleet.DefaultBreakerCooldown, "open → half-open cooldown before a breaker admits a trial request")
	)
	flag.Var(&workers, "worker", "static fleet member, as name=url or url (repeatable); more can join at runtime via slap-serve -coordinator")
	flag.Parse()

	cfg := fleet.Config{
		Workers:           workers,
		VNodes:            *vnodes,
		ProbeInterval:     *probeInterval,
		ProbeTimeout:      *probeTimeout,
		DeadAfter:         *deadAfter,
		MaxAttempts:       *attempts,
		InflightPerWorker: *inflight,
		MaxBodyBytes:      *maxBody,
		JobsDir:           *jobsDir,
		ShardConcurrency:  *shardConc,
		JournalPath:       *journal,
		RequestTimeout:    *reqTimeout,
		BreakerThreshold:  *brkThreshold,
		BreakerCooldown:   *brkCooldown,
	}
	if err := run(*addr, cfg, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "slap-coordinator:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg fleet.Config, drainWait time.Duration) error {
	c, err := fleet.New(cfg)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("slap-coordinator listening on %s (%d static workers, %d vnodes each)",
			addr, len(cfg.Workers), cfg.VNodes)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received: draining (deadline %s)", drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	err = hs.Shutdown(shutdownCtx) // waits for in-flight proxies
	c.Close()                      // then stop probes and cancel fleet jobs
	if err != nil && err != context.DeadlineExceeded {
		return err
	}
	log.Printf("drained, bye")
	return nil
}
