package main

import (
	"testing"

	"slap/internal/fleet"
)

func TestWorkerFlagsSet(t *testing.T) {
	var w workerFlags
	if err := w.Set("a=http://10.0.0.5:8351"); err != nil {
		t.Fatal(err)
	}
	if err := w.Set("http://10.0.0.6:8351"); err != nil {
		t.Fatal(err)
	}
	if err := w.Set("broken="); err == nil {
		t.Error("Set(\"broken=\") succeeded, want error")
	}
	if len(w) != 2 {
		t.Fatalf("collected %d workers, want 2", len(w))
	}
	if w[0].Name != "a" || w[0].URL != "http://10.0.0.5:8351" {
		t.Errorf("w[0] = %+v, want {a http://10.0.0.5:8351}", w[0])
	}
	if w[1].Name != "" || w[1].URL != "http://10.0.0.6:8351" {
		t.Errorf("w[1] = %+v, want { http://10.0.0.6:8351}", w[1])
	}
}

func TestRunRejectsBadWorkerURL(t *testing.T) {
	var workers workerFlags
	if err := workers.Set("a=not a url"); err != nil {
		t.Fatal(err)
	}
	if err := run("127.0.0.1:0", fleet.Config{Workers: workers}, 0); err == nil {
		t.Error("run with an invalid worker URL succeeded, want startup error")
	}
}
