// Command slap-serve runs the long-running SLAP mapping service: an HTTP
// front end over the same flow as the slap CLI, with a model/library
// registry loaded once at startup (hot-addable at runtime), a global
// worker budget shared by all requests, and Prometheus/expvar metrics.
//
// Usage:
//
//	slap-serve -addr :8351
//	slap-serve -model prod=model.gob -model exp=candidate.gob -lib my.lib
//	curl --data-binary @design.aag 'localhost:8351/v1/map?policy=default'
//	curl --data-binary @design.aag 'localhost:8351/v1/map?policy=slap&model=prod'
//	curl localhost:8351/healthz ; curl localhost:8351/metrics
//
// Endpoints: POST /v1/map, POST /v1/classify, GET /healthz, GET /metrics,
// GET /v1/registry, POST /v1/registry/{models,libraries}, GET /debug/vars,
// plus background dataset jobs that survive client disconnects:
// POST /v1/jobs/dataset (202 + id), GET /v1/jobs, GET /v1/jobs/{id},
// DELETE /v1/jobs/{id}.
// On SIGINT/SIGTERM the server drains gracefully: listeners close, queued
// requests shed with 503, and in-flight mappings run to completion.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slap/internal/chaos"
	"slap/internal/choice"
	"slap/internal/infer"
	"slap/internal/server"
)

// choiceCacheBytes converts the -choice-cache MiB flag to the Config byte
// convention: 0 keeps the default budget, negative disables the cache.
func choiceCacheBytes(mib int64) int64 {
	if mib < 0 {
		return -1
	}
	return mib << 20
}

// artifactFlags collects repeatable -model / -lib flags of the form
// "name=path" or bare "path" (name derived from the file name).
type artifactFlags []struct{ name, path string }

func (a *artifactFlags) String() string { return fmt.Sprint(*a) }

func (a *artifactFlags) Set(v string) error {
	name, path := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if path == "" {
		return fmt.Errorf("empty path in %q (want name=path or path)", v)
	}
	*a = append(*a, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8351", "listen address")
		models    artifactFlags
		libs      artifactFlags
		workers   = flag.Int("workers", 0, "global worker budget shared by all requests (0 = all CPU cores)")
		queueCap  = flag.Int("queue", server.DefaultQueueCap, "bounded request queue length (overload sheds with 503)")
		timeout   = flag.Duration("timeout", server.DefaultRequestTimeout, "default per-request timeout")
		maxBody   = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
		drainWait = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		jobsDir   = flag.String("jobs-dir", "", "directory for dataset-job shard checkpoints (default: under the system temp dir)")
		jobKeep   = flag.Duration("job-retention", server.DefaultJobRetention, "how long finished dataset jobs (and their shard directories) are kept; negative keeps them forever")
		batch     = flag.Int("batch", infer.DefaultMaxBatch, "inference coalescing batch size shared across slap/classify requests (negative disables batching)")
		batchWait = flag.Duration("batch-wait", infer.DefaultMaxWait, "max wait for an inference batch to fill before flushing")
		adaptive  = flag.Bool("adaptive-batch-wait", true, "derive the inference flush deadline from the observed arrival rate (clamped to -batch-wait)")
		streaming = flag.Bool("streaming", true, "fused streaming mapping pipeline (matching inside the cut wavefront); false = two-phase enumerate-then-match")
		arenas    = flag.Int("arena-cache", 0, "cut arenas cached across requests for same-graph reuse (0 = default, negative disables)")
		resCache  = flag.Int64("result-cache", 256, "mapping result cache budget in MiB: exact resubmissions are answered from the cache in O(1) (0 disables)")
		eco       = flag.Bool("eco", true, "delta-remap edited designs against the nearest cached relative, re-running only the dirty cone (needs -result-cache)")

		choiceWorkers = flag.Int("choice-workers", 0, "parallel choice-view proving workers for choices=1 requests (0 = all CPU cores; the built view is identical for any value)")
		choiceBudget  = flag.Int64("choice-budget", 0, "per-pair SAT conflict budget for choice-view proofs (0 = default)")
		choiceCache   = flag.Int64("choice-cache", 0, "choice view cache budget in MiB: repeat choices=1 submissions skip view construction (0 = default, negative disables)")

		// Fleet membership: with -coordinator and -advertise set, the worker
		// self-registers (and re-registers as a heartbeat) so a
		// slap-coordinator routes hash-affine traffic to it.
		name        = flag.String("name", "", "worker name stamped on responses and used for fleet routing (default: the advertise URL's host:port)")
		advertise   = flag.String("advertise", "", "URL under which a fleet coordinator can reach this worker (e.g. http://10.0.0.5:8351)")
		coordinator = flag.String("coordinator", "", "coordinator base URL to self-register with (requires -advertise)")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "re-registration cadence while -coordinator is set")

		// Fault injection (testing only): a deterministic chaos schedule
		// wrapped around the whole handler, e.g.
		// -chaos 'kind=kill,path=/v1/map,every=3;kind=latency,path=/v1/map,delay=50ms'
		chaosSpec = flag.String("chaos", "", "deterministic fault-injection schedule (semicolon-separated rules of kind=kill|hang|latency|error|corrupt with path=,delay=,after=,every=,count=,prob=); testing only")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for probabilistic chaos rules; same seed + same request order = same faults")
	)
	flag.Var(&models, "model", "model to preload, as name=path or path (repeatable)")
	flag.Var(&libs, "lib", "genlib-like library to preload, as name=path or path (repeatable)")
	flag.Parse()

	if *coordinator != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "slap-serve: -coordinator requires -advertise")
		os.Exit(2)
	}
	workerName := *name
	if workerName == "" && *advertise != "" {
		if u, err := url.Parse(*advertise); err == nil {
			workerName = u.Host
		}
	}

	cfg := server.Config{
		WorkerName:        workerName,
		WorkerBudget:      *workers,
		QueueCap:          *queueCap,
		DefaultTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		JobsDir:           *jobsDir,
		JobRetention:      *jobKeep,
		MaxBatch:          *batch,
		BatchWait:         *batchWait,
		AdaptiveBatchWait: *adaptive,
		DisableStreaming:  !*streaming,
		ArenaCache:        *arenas,
		ResultCacheBytes:  *resCache << 20,
		ECO:               *eco,
		ChoiceOptions:     choice.Options{Workers: *choiceWorkers, ProofConflicts: *choiceBudget},
		ChoiceCacheBytes:  choiceCacheBytes(*choiceCache),
	}
	fleet := fleetConfig{name: workerName, advertise: *advertise, coordinator: *coordinator, heartbeat: *heartbeat}

	var sched *chaos.Schedule
	if *chaosSpec != "" {
		rules, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slap-serve: -chaos:", err)
			os.Exit(2)
		}
		sched = chaos.New(*chaosSeed, rules...)
		log.Printf("CHAOS ENABLED: %d fault rule(s), seed %d — testing only", len(rules), *chaosSeed)
	}

	if err := run(*addr, models, libs, cfg, fleet, sched, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "slap-serve:", err)
		os.Exit(1)
	}
}

// fleetConfig carries the worker's fleet-membership flags.
type fleetConfig struct {
	name        string
	advertise   string
	coordinator string
	heartbeat   time.Duration
}

// register performs one registration round trip against the coordinator.
func (f fleetConfig) register(ctx context.Context) error {
	body, err := json.Marshal(map[string]string{"name": f.name, "url": f.advertise})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(f.coordinator, "/")+"/v1/workers/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return nil
}

// registerLoop keeps the worker registered with its coordinator: the
// initial registration announces the worker, every later round doubles as
// a liveness heartbeat (re-registering revives a worker the coordinator
// had declared dead). Registration failures only log — the worker serves
// direct traffic regardless.
func (f fleetConfig) registerLoop(ctx context.Context) {
	hb := f.heartbeat
	if hb <= 0 {
		hb = 5 * time.Second
	}
	registered := false
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		if err := f.register(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("fleet registration with %s failed (will retry): %v", f.coordinator, err)
			registered = false
		} else if !registered {
			log.Printf("registered with coordinator %s as %q (%s)", f.coordinator, f.name, f.advertise)
			registered = true
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func run(addr string, models, libs artifactFlags, cfg server.Config, fleet fleetConfig, sched *chaos.Schedule, drainWait time.Duration) error {
	reg := server.NewRegistry()
	for _, m := range models {
		if err := reg.AddModelFile(m.name, m.path); err != nil {
			return err
		}
	}
	for _, l := range libs {
		if err := reg.AddLibraryFile(l.name, l.path); err != nil {
			return err
		}
	}

	cfg.Registry = reg
	s := server.New(cfg)
	s.Metrics().PublishExpvar()

	handler := http.Handler(s.Handler())
	if sched != nil {
		handler = sched.Middleware(handler)
	}
	hs := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if fleet.coordinator != "" {
		go fleet.registerLoop(ctx)
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("slap-serve listening on %s (budget %d workers, queue %d, %d models, %d libraries)",
			addr, s.Scheduler().Budget(), cfg.QueueCap, len(reg.Models()), len(reg.Libraries()))
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received: draining (deadline %s)", drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	err := hs.Shutdown(shutdownCtx) // waits for in-flight requests
	s.Close()                       // then fail-fast any queued acquires
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("drained, bye")
	return nil
}
