package main

import (
	"testing"

	"slap/internal/server"
)

func TestArtifactFlagsSet(t *testing.T) {
	var a artifactFlags
	if err := a.Set("prod=model.gob"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("plain.gob"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("broken="); err == nil {
		t.Error("Set(\"broken=\") succeeded, want error")
	}
	if len(a) != 2 {
		t.Fatalf("collected %d artifacts, want 2", len(a))
	}
	if a[0].name != "prod" || a[0].path != "model.gob" {
		t.Errorf("a[0] = %+v, want {prod model.gob}", a[0])
	}
	if a[1].name != "" || a[1].path != "plain.gob" {
		t.Errorf("a[1] = %+v, want { plain.gob}", a[1])
	}
}

func TestRunRejectsBadArtifacts(t *testing.T) {
	var models artifactFlags
	if err := models.Set("/nonexistent/model.gob"); err != nil {
		t.Fatal(err)
	}
	if err := run("127.0.0.1:0", models, nil, server.Config{WorkerBudget: 1, QueueCap: 1}, fleetConfig{}, nil, 0); err == nil {
		t.Error("run with a missing model file succeeded, want startup error")
	}
}
